//! A hand-rolled, dependency-free slice of HTTP/1.1 — exactly what the
//! service needs and no more.
//!
//! Connections are persistent per HTTP/1.1 semantics: requests default to
//! keep-alive unless the client sends `Connection: close` (or speaks
//! HTTP/1.0 without `Connection: keep-alive`), and the handler loop
//! serves requests off one socket until either side opts out. Reads are
//! bounded three ways — header block and body size caps, a per-read
//! socket timeout, and a whole-request deadline ([`REQUEST_DEADLINE`], so
//! a client trickling bytes cannot stretch the per-read timeout
//! indefinitely) — so a slow or malicious client cannot wedge a handler
//! thread or balloon memory. An idle keep-alive connection times out at
//! the per-read timeout and is closed, which is also what bounds how long
//! a handler sits parked on a quiet client.
//!
//! Responses carry an explicit content type and a byte body (JSON, plain
//! text, or binary), and [`ChunkedWriter`] streams an unbounded response
//! with `Transfer-Encoding: chunked` — the watch endpoint's frame feed.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted header block (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;

/// Largest accepted request body.
pub const MAX_BODY: usize = 1024 * 1024;

/// How long a handler waits on a single read from a slow client.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Hard ceiling on reading one whole request, whatever the per-read
/// pace — a client trickling one byte per `IO_TIMEOUT` must not hold a
/// handler thread past this.
pub const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// A parsed request: method, path (with any query string split off), and
/// body.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (`/run`).
    pub path: String,
    /// Query string after `?`, empty if none (`async`).
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// `true` when the connection may serve another request after the
    /// response: HTTP/1.1 without `Connection: close`, or HTTP/1.0 with
    /// an explicit `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// `true` when the query string contains `flag` as a `&`-separated
    /// token (`/run?async&replay`).
    pub fn has_query_flag(&self, flag: &str) -> bool {
        self.query.split('&').any(|q| q == flag)
    }
}

/// Read and parse one request from the stream.
///
/// Errors are IO-shaped; the caller turns them into a closed connection
/// (a client that sends garbage framing gets no response, like any HTTP
/// server mid-parse).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    let deadline = std::time::Instant::now() + REQUEST_DEADLINE;
    let overdue = || io::Error::new(io::ErrorKind::TimedOut, "request took too long to arrive");
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];

    // Read until the blank line ending the header block.
    let head_end = loop {
        if let Some(pos) = find_double_crlf(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(io::Error::other("header block too large"));
        }
        if std::time::Instant::now() > deadline {
            return Err(overdue());
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| io::Error::other("non-utf8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::other("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| io::Error::other("request line without a path"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let http10 = parts.next() == Some("HTTP/1.0");

    let mut content_length = 0usize;
    let mut keep_alive = !http10;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| io::Error::other("bad content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::other("body too large"));
    }

    // The body: whatever followed the blank line, plus the rest.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        if std::time::Instant::now() > deadline {
            return Err(overdue());
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        query,
        body,
        keep_alive,
    })
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response under construction: status, content type, extra headers,
/// byte body.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code (200, 202, 400, 404, 405, 429, 500).
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the standard set (`X-Gatherd-Cache`, ...).
    pub headers: Vec<(String, String)>,
    /// The body bytes (JSON text, plain text, or binary).
    pub body: Vec<u8>,
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response (`/metrics`).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            content_type: "text/plain; charset=utf-8",
            ..Response::json(status, body)
        }
    }

    /// A binary response (`/replay/<hash>`).
    pub fn binary(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/octet-stream",
            headers: Vec::new(),
            body,
        }
    }

    /// Add a header (builder style).
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialize and send on the stream (best effort: the client may have
    /// hung up — the caller ignores the error and moves on).
    /// `keep_alive` picks the advertised connection disposition; the
    /// caller loops for another request only when it was `true`.
    pub fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> io::Result<()> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status)).as_bytes(),
        );
        out.extend_from_slice(format!("Content-Type: {}\r\n", self.content_type).as_bytes());
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(if keep_alive {
            b"Connection: keep-alive\r\n".as_slice()
        } else {
            b"Connection: close\r\n".as_slice()
        });
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        stream.write_all(&out)?;
        stream.flush()
    }
}

/// A streaming response: sends the header block with
/// `Transfer-Encoding: chunked`, then one chunk per [`ChunkedWriter::chunk`]
/// call, then the terminal zero chunk on [`ChunkedWriter::finish`]. The
/// connection always closes after a streamed response — a stream has no
/// keep-alive framing worth preserving.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Write the header block and return the chunk writer.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> io::Result<ChunkedWriter<'a>> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status)
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Send one chunk (empty chunks are skipped — an empty chunk is the
    /// stream terminator in the wire format).
    pub fn chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        self.stream
            .write_all(format!("{:x}\r\n", bytes.len()).as_bytes())?;
        self.stream.write_all(bytes)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Send the terminal chunk.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> io::Result<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = round_trip(
            b"POST /run?async HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.query, "async");
        assert!(req.has_query_flag("async"));
        assert!(!req.has_query_flag("replay"));
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_bodyless_get() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "");
        assert!(req.body.is_empty());
    }

    /// HTTP/1.1 defaults to keep-alive; `Connection: close` and bare
    /// HTTP/1.0 opt out; HTTP/1.0 + `Connection: keep-alive` opts in.
    #[test]
    fn connection_disposition_follows_http11_semantics() {
        let ka = |raw: &[u8]| round_trip(raw).unwrap().keep_alive;
        assert!(ka(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.0\r\nHost: x\r\n\r\n"));
        assert!(ka(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
    }

    #[test]
    fn truncated_requests_error() {
        assert!(round_trip(b"GET /healthz HTTP/1.1\r\n").is_err());
        assert!(round_trip(b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").is_err());
        assert!(round_trip(b"POST /run HTTP/1.1\r\nContent-Length: zebra\r\n\r\n").is_err());
    }

    #[test]
    fn response_wire_format() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        Response::json(429, "{\"error\":\"full\"}")
            .header("X-Gatherd-Cache", "miss")
            .write_to(&mut stream, false)
            .unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Gatherd-Cache: miss\r\n"));
        assert!(text.ends_with("{\"error\":\"full\"}"));
    }

    #[test]
    fn keep_alive_and_content_type_variants() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        Response::text(200, "up 1\n")
            .write_to(&mut stream, true)
            .unwrap();
        Response::binary(200, vec![0x01, 0x02])
            .write_to(&mut stream, false)
            .unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.contains("Content-Type: text/plain; charset=utf-8\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Content-Type: application/octet-stream\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn chunked_writer_wire_format() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        let mut w = ChunkedWriter::start(&mut stream, 200, "application/octet-stream").unwrap();
        w.chunk(b"hello").unwrap();
        w.chunk(b"").unwrap(); // skipped: would terminate the stream
        w.chunk(&[0u8; 16]).unwrap();
        w.finish().unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        let body = text.split_once("\r\n\r\n").unwrap().1;
        assert_eq!(
            body.as_bytes(),
            [
                b"5\r\nhello\r\n".as_slice(),
                b"10\r\n",
                &[0u8; 16],
                b"\r\n0\r\n\r\n"
            ]
            .concat()
        );
    }
}
