//! A hand-rolled, dependency-free slice of HTTP/1.1 — exactly what the
//! service needs and no more.
//!
//! One request per connection (`Connection: close` on every response):
//! the service's requests are short and the simplicity is worth more than
//! keep-alive here. Reads are bounded three ways — header block and body
//! size caps, a per-read socket timeout, and a whole-request deadline
//! ([`REQUEST_DEADLINE`], so a client trickling bytes cannot stretch the
//! per-read timeout indefinitely) — so a slow or malicious client cannot
//! wedge a handler thread or balloon memory.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted header block (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;

/// Largest accepted request body.
pub const MAX_BODY: usize = 1024 * 1024;

/// How long a handler waits on a single read from a slow client.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Hard ceiling on reading one whole request, whatever the per-read
/// pace — a client trickling one byte per `IO_TIMEOUT` must not hold a
/// handler thread past this.
pub const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// A parsed request: method, path (with any query string split off), and
/// body.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (`/run`).
    pub path: String,
    /// Query string after `?`, empty if none (`async`).
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Read and parse one request from the stream.
///
/// Errors are IO-shaped; the caller turns them into a closed connection
/// (a client that sends garbage framing gets no response, like any HTTP
/// server mid-parse).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    let deadline = std::time::Instant::now() + REQUEST_DEADLINE;
    let overdue = || io::Error::new(io::ErrorKind::TimedOut, "request took too long to arrive");
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];

    // Read until the blank line ending the header block.
    let head_end = loop {
        if let Some(pos) = find_double_crlf(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(io::Error::other("header block too large"));
        }
        if std::time::Instant::now() > deadline {
            return Err(overdue());
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| io::Error::other("non-utf8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::other("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| io::Error::other("request line without a path"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| io::Error::other("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::other("body too large"));
    }

    // The body: whatever followed the blank line, plus the rest.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        if std::time::Instant::now() > deadline {
            return Err(overdue());
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response under construction: status, extra headers, JSON body.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code (200, 202, 400, 404, 405, 429, 500).
    pub status: u16,
    /// Extra headers beyond the standard set (`X-Gatherd-Cache`, ...).
    pub headers: Vec<(String, String)>,
    /// The JSON body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Add a header (builder style).
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serialize and send on the stream (best effort: the client may have
    /// hung up — the caller ignores the error and moves on).
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut out = String::with_capacity(self.body.len() + 256);
        out.push_str(&format!("HTTP/1.1 {} {}\r\n", self.status, self.reason()));
        out.push_str("Content-Type: application/json\r\n");
        out.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        out.push_str("Connection: close\r\n");
        for (name, value) in &self.headers {
            out.push_str(&format!("{name}: {value}\r\n"));
        }
        out.push_str("\r\n");
        out.push_str(&self.body);
        stream.write_all(out.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> io::Result<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = round_trip(
            b"POST /run?async HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.query, "async");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_bodyless_get() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "");
        assert!(req.body.is_empty());
    }

    #[test]
    fn truncated_requests_error() {
        assert!(round_trip(b"GET /healthz HTTP/1.1\r\n").is_err());
        assert!(round_trip(b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").is_err());
        assert!(round_trip(b"POST /run HTTP/1.1\r\nContent-Length: zebra\r\n\r\n").is_err());
    }

    #[test]
    fn response_wire_format() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        Response::json(429, "{\"error\":\"full\"}")
            .header("X-Gatherd-Cache", "miss")
            .write_to(&mut stream)
            .unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("X-Gatherd-Cache: miss\r\n"));
        assert!(text.ends_with("{\"error\":\"full\"}"));
    }
}
