//! The bounded job queue: admission control, single-flight coalescing,
//! and the job registry behind the progress endpoint.
//!
//! Jobs flow `submit → queue → worker pop → run → complete`. The queue is
//! bounded — [`JobTable::submit`] refuses new work once `capacity`
//! uncompleted jobs exist (the service's 429 backpressure) — and
//! *single-flight*: a submission whose spec hash is already queued or
//! running joins the existing job instead of enqueueing a duplicate, so a
//! thundering herd of identical requests costs one simulation.
//!
//! Replay-recording jobs (`?replay`) refine single-flight: a recording
//! job satisfies both recording and plain submissions of its spec (the
//! result row is identical — taps are passive), but a plain in-flight job
//! cannot satisfy a recording submission (nothing is logging its rounds),
//! so the recording submission enqueues its own job under a separate
//! single-flight key.
//!
//! Every job carries a shared [`ProgressSlot`]; the worker attaches a
//! `ProgressProbe` to the simulation, so `GET /progress/<job>` reads live
//! round/merge counts from the slot without touching the run. Recording
//! jobs additionally carry a bounded [`FrameRing`] the worker's
//! `ReplayWriter` publishes live frames into — the `GET /watch/<job>`
//! feed.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use bench::campaign::CampaignRow;
use bench::scenario::ScenarioSpec;
use chain_sim::{FrameRing, ProgressSlot};

/// Capacity of a recording job's live-frame ring. Plenty for a watcher
/// keeping pace; a slower one skips to the latest frame (frames are
/// self-contained snapshots), which is the point — the ring must stay
/// small and never block the simulation worker.
pub const WATCH_RING_CAP: usize = 256;

/// Where a job is in its life cycle.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Submitted, waiting for a worker.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished; the result row is cached and attached.
    Done(CampaignRow),
    /// The simulation panicked; the message is all that is left. Failed
    /// jobs are never cached — a resubmission runs fresh.
    Failed(String),
}

impl JobState {
    /// Stable state label (`queued` / `running` / `done` / `failed`).
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

/// One submitted simulation job.
#[derive(Debug)]
pub struct Job {
    /// Service-unique job id (monotone).
    pub id: u64,
    /// The decoded spec to run.
    pub spec: ScenarioSpec,
    /// The spec's content hash — the cache key.
    pub hash: String,
    /// Live progress feed, published by the worker's `ProgressProbe`.
    pub slot: Arc<ProgressSlot>,
    /// Live-frame ring for `/watch` streaming; present exactly when this
    /// job records a replay.
    pub ring: Option<Arc<FrameRing>>,
    /// When the job entered the queue — the worker's pop time minus this
    /// is the queue wait the service's `queue_wait_us` histogram records.
    pub submitted: std::time::Instant,
    state: Mutex<JobState>,
    done: Condvar,
}

/// The single-flight index key: recording jobs key separately so a
/// recording submission never silently joins a non-recording run.
fn flight_key(hash: &str, replay: bool) -> String {
    if replay {
        format!("{hash}#r")
    } else {
        hash.to_string()
    }
}

impl Job {
    /// `true` when this job records a replay (and therefore carries a
    /// live-frame ring).
    pub fn records_replay(&self) -> bool {
        self.ring.is_some()
    }

    /// The job's current state (cloned snapshot).
    pub fn state(&self) -> JobState {
        self.state.lock().unwrap().clone()
    }

    /// The state label alone — no clone of a finished job's result row
    /// (the progress endpoint polls this).
    pub fn state_name(&self) -> &'static str {
        self.state.lock().unwrap().name()
    }

    /// Block until the job reaches a terminal state: the result row, or
    /// the failure message if the simulation panicked.
    pub fn wait(&self) -> Result<CampaignRow, String> {
        let mut state = self.state.lock().unwrap();
        loop {
            match &*state {
                JobState::Done(row) => return Ok(row.clone()),
                JobState::Failed(msg) => return Err(msg.clone()),
                _ => state = self.done.wait(state).unwrap(),
            }
        }
    }

    /// [`Job::wait`] with a patience bound: `None` if the job is still
    /// going when `timeout` elapses (the job itself keeps running — only
    /// the waiter gives up).
    pub fn wait_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Option<Result<CampaignRow, String>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().unwrap();
        loop {
            match &*state {
                JobState::Done(row) => return Some(Ok(row.clone())),
                JobState::Failed(msg) => return Some(Err(msg.clone())),
                _ => {}
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self.done.wait_timeout(state, deadline - now).unwrap();
            state = next;
        }
    }

    fn set(&self, new: JobState) {
        let mut state = self.state.lock().unwrap();
        let finished = new.is_terminal();
        *state = new;
        if finished {
            self.done.notify_all();
        }
    }
}

/// What [`JobTable::submit`] decided.
#[derive(Debug)]
pub enum Submit {
    /// A new job was enqueued.
    New(Arc<Job>),
    /// An identical spec is already queued or running; the caller shares
    /// its job (single-flight).
    Joined(Arc<Job>),
    /// The queue is at capacity — backpressure (429).
    Full,
}

struct Tables {
    queue: VecDeque<Arc<Job>>,
    /// Every job ever submitted, by id (pruned once `done` jobs exceed
    /// [`RETAINED_JOBS`] — the progress endpoint's lookup table).
    jobs: HashMap<u64, Arc<Job>>,
    /// Uncompleted jobs by flight key — the spec hash, suffixed for
    /// recording jobs (single-flight index). Also the measure the
    /// capacity bound applies to: queued + running.
    inflight: HashMap<String, Arc<Job>>,
    stopped: bool,
}

/// Completed jobs retained for the progress endpoint before pruning.
const RETAINED_JOBS: usize = 4096;

/// The bounded, single-flight job queue plus the job registry.
pub struct JobTable {
    inner: Mutex<Tables>,
    avail: Condvar,
    capacity: usize,
    next_id: AtomicU64,
}

impl JobTable {
    /// A queue admitting at most `capacity` uncompleted jobs.
    pub fn new(capacity: usize) -> JobTable {
        JobTable {
            inner: Mutex::new(Tables {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                inflight: HashMap::new(),
                stopped: false,
            }),
            avail: Condvar::new(),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Uncompleted jobs (queued + running).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().inflight.len()
    }

    /// Admit a job (or join / refuse — see [`Submit`]). `replay` asks for
    /// a recording job: it joins only an in-flight *recording* job of the
    /// same spec, while a plain submission joins either flavor (a
    /// recording run's row is identical — taps are passive).
    pub fn submit(&self, spec: ScenarioSpec, hash: String, replay: bool) -> Submit {
        let mut t = self.inner.lock().unwrap();
        if let Some(job) = t.inflight.get(&flight_key(&hash, replay)) {
            return Submit::Joined(job.clone());
        }
        if !replay {
            if let Some(job) = t.inflight.get(&flight_key(&hash, true)) {
                return Submit::Joined(job.clone());
            }
        }
        if t.inflight.len() >= self.capacity || t.stopped {
            return Submit::Full;
        }
        let job = Arc::new(Job {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            spec,
            hash: hash.clone(),
            slot: ProgressSlot::new(),
            ring: replay.then(|| FrameRing::new(WATCH_RING_CAP)),
            submitted: std::time::Instant::now(),
            state: Mutex::new(JobState::Queued),
            done: Condvar::new(),
        });
        t.queue.push_back(job.clone());
        t.jobs.insert(job.id, job.clone());
        t.inflight.insert(flight_key(&hash, replay), job.clone());
        drop(t);
        self.avail.notify_one();
        Submit::New(job)
    }

    /// Worker side: block for the next job, mark it running; `None` once
    /// the table is stopped and drained (the worker exits).
    pub fn pop(&self) -> Option<Arc<Job>> {
        let mut t = self.inner.lock().unwrap();
        loop {
            if let Some(job) = t.queue.pop_front() {
                job.set(JobState::Running);
                return Some(job);
            }
            if t.stopped {
                return None;
            }
            t = self.avail.wait(t).unwrap();
        }
    }

    /// Worker side: attach the result, wake every waiter, release the
    /// single-flight slot, and prune old finished jobs.
    pub fn complete(&self, job: &Arc<Job>, row: CampaignRow) {
        self.finish(job, JobState::Done(row));
    }

    /// Worker side: record a simulation failure (panic). Waiters get the
    /// message; the single-flight slot is released so a resubmission of
    /// the same spec runs fresh instead of joining a dead job.
    pub fn fail(&self, job: &Arc<Job>, message: String) {
        self.finish(job, JobState::Failed(message));
    }

    fn finish(&self, job: &Arc<Job>, terminal: JobState) {
        job.set(terminal);
        let mut t = self.inner.lock().unwrap();
        t.inflight
            .remove(&flight_key(&job.hash, job.records_replay()));
        if t.jobs.len() > RETAINED_JOBS {
            let mut finished: Vec<u64> = t
                .jobs
                .iter()
                .filter(|(_, j)| j.state.lock().unwrap().is_terminal())
                .map(|(id, _)| *id)
                .collect();
            // Keep the most recent half so fresh terminal polls still hit.
            finished.sort_unstable();
            for id in finished.iter().take(finished.len() / 2) {
                t.jobs.remove(id);
            }
        }
    }

    /// Look up a job by id (the progress endpoint).
    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.inner.lock().unwrap().jobs.get(&id).cloned()
    }

    /// Refuse new work and wake every blocked worker so the pool can
    /// drain and exit. Already-queued jobs still run to completion.
    pub fn stop(&self) {
        self.inner.lock().unwrap().stopped = true;
        self.avail.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bench::scenario::StrategyKind;
    use workloads::Family;

    fn spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec::strategy(Family::Rectangle, 16, seed, StrategyKind::paper())
    }

    fn row() -> CampaignRow {
        CampaignRow {
            family: "rectangle".into(),
            n: 16,
            n_actual: 16,
            seed: 0,
            strategy: "paper".into(),
            scheduler: "fsync".into(),
            geometry: "grid".into(),
            rounds: 1,
            makespan: 1,
            max_travel_milli: None,
            wall_us: 1,
            outcome: "gathered".into(),
            merges: 0,
            longest_gap: 0,
        }
    }

    #[test]
    fn capacity_bounds_admission_and_identical_specs_join() {
        let table = JobTable::new(2);
        let Submit::New(a) = table.submit(spec(0), "h0".into(), false) else {
            panic!("first submit admits");
        };
        assert!(matches!(
            table.submit(spec(1), "h1".into(), false),
            Submit::New(_)
        ));
        // Full at capacity...
        assert!(matches!(
            table.submit(spec(2), "h2".into(), false),
            Submit::Full
        ));
        // ...but an identical in-flight spec joins instead of filling.
        let Submit::Joined(shared) = table.submit(spec(0), "h0".into(), false) else {
            panic!("identical spec must join");
        };
        assert_eq!(shared.id, a.id);
        assert_eq!(table.depth(), 2);

        // Completing one frees a slot.
        let popped = table.pop().unwrap();
        assert_eq!(popped.id, a.id);
        assert_eq!(popped.state().name(), "running");
        table.complete(&popped, row());
        assert_eq!(table.depth(), 1);
        assert!(matches!(
            table.submit(spec(2), "h2".into(), false),
            Submit::New(_)
        ));
        assert_eq!(a.wait().unwrap().rounds, 1);
        assert_eq!(table.job(a.id).unwrap().state().name(), "done");
    }

    /// Recording submissions never join plain jobs (nothing records
    /// there), but plain submissions join recording jobs; both release
    /// their own flight key on completion.
    #[test]
    fn replay_single_flight_is_one_directional() {
        let table = JobTable::new(4);
        let Submit::New(plain) = table.submit(spec(0), "h0".into(), false) else {
            panic!("plain submit admits");
        };
        assert!(plain.ring.is_none());
        // A recording submission of the same spec needs its own job.
        let Submit::New(rec) = table.submit(spec(0), "h0".into(), true) else {
            panic!("recording submit must not join a plain job");
        };
        assert!(rec.records_replay());
        assert_ne!(plain.id, rec.id);
        // Further submissions of either flavor join the matching flight.
        let Submit::Joined(j1) = table.submit(spec(0), "h0".into(), true) else {
            panic!("second recording submit joins");
        };
        assert_eq!(j1.id, rec.id);
        assert_eq!(table.depth(), 2);

        // With only the recording job in flight, a plain submission joins
        // it: its row is identical and it is strictly more observable.
        let a = table.pop().unwrap();
        table.complete(&a, row());
        assert_eq!(table.depth(), 1);
        let Submit::Joined(j2) = table.submit(spec(0), "h0".into(), false) else {
            panic!("plain submit joins the in-flight recording job");
        };
        assert_eq!(j2.id, rec.id);

        let b = table.pop().unwrap();
        table.complete(&b, row());
        assert_eq!(table.depth(), 0);
    }

    /// A failed (panicked) job releases its single-flight slot, reports
    /// the message to waiters, and a resubmission runs fresh.
    #[test]
    fn failed_jobs_release_their_hash() {
        let table = JobTable::new(2);
        let Submit::New(job) = table.submit(spec(0), "h0".into(), false) else {
            panic!()
        };
        let popped = table.pop().unwrap();
        table.fail(&popped, "simulation panicked: boom".into());
        assert_eq!(job.wait().unwrap_err(), "simulation panicked: boom");
        assert_eq!(table.job(job.id).unwrap().state().name(), "failed");
        assert_eq!(table.depth(), 0);
        // The same hash is admitted again (New, not Joined).
        assert!(matches!(
            table.submit(spec(0), "h0".into(), false),
            Submit::New(_)
        ));
    }

    /// `wait_timeout` gives up without killing the job.
    #[test]
    fn wait_timeout_returns_none_on_a_slow_job() {
        let table = JobTable::new(2);
        let Submit::New(job) = table.submit(spec(0), "h0".into(), false) else {
            panic!()
        };
        assert!(job
            .wait_timeout(std::time::Duration::from_millis(30))
            .is_none());
        let popped = table.pop().unwrap();
        table.complete(&popped, row());
        assert_eq!(
            job.wait_timeout(std::time::Duration::from_millis(30))
                .unwrap()
                .unwrap()
                .rounds,
            1
        );
    }

    #[test]
    fn waiters_unblock_on_completion_across_threads() {
        let table = Arc::new(JobTable::new(4));
        let Submit::New(job) = table.submit(spec(9), "h9".into(), false) else {
            panic!()
        };
        let waiter = {
            let job = job.clone();
            std::thread::spawn(move || job.wait().unwrap().rounds)
        };
        let popped = table.pop().unwrap();
        table.complete(&popped, row());
        assert_eq!(waiter.join().unwrap(), 1);
    }

    #[test]
    fn stop_drains_workers() {
        let table = Arc::new(JobTable::new(4));
        let t2 = table.clone();
        let worker = std::thread::spawn(move || t2.pop().is_none());
        std::thread::sleep(std::time::Duration::from_millis(20));
        table.stop();
        assert!(worker.join().unwrap(), "stopped pop must return None");
        assert!(matches!(
            table.submit(spec(0), "h".into(), false),
            Submit::Full
        ));
    }
}
