//! The content-addressed result cache.
//!
//! Keys are campaign spec hashes ([`bench::campaign::spec_hash`]):
//! 64-bit FNV-1a over the versioned canonical spec encoding — the same
//! key campaign resume uses, so a result computed by *either* system
//! answers for the other. Values are [`CampaignRow`]s, persisted in the
//! campaign store's JSON Lines format (`gatherd.jsonl` in the cache
//! directory): the cache file is a valid campaign store, and loading it
//! back recomputes every key from the row's identity fields rather than
//! trusting the stored hash, exactly like campaign readers do.
//!
//! A hit serves the stored row; re-serialization is deterministic
//! ([`CampaignRow::to_store_json`] emits byte-stable JSON), so a repeated
//! request gets a byte-identical `result` object without touching the
//! engine. `wall_us` is the *first* run's measurement — replays are
//! marked `cached` in the response envelope, and a cached `wall_us`
//! deliberately keeps measuring the original simulation, not the lookup.
//!
//! Replay blobs (the record-and-replay telemetry of `?replay` runs) ride
//! alongside as plain files — `dir/replays/<hash>.replay` — written
//! atomically (temp + rename) so a crashed write never leaves a torn blob
//! to serve. They are a side store, not part of the row cache: a row can
//! exist without a replay (the spec first ran without `?replay`), and a
//! replay request for such a spec re-simulates once to record it while
//! the original row keeps answering.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use bench::campaign::store;
use bench::campaign::CampaignRow;

/// The persistent, shared result cache (interior mutability; one instance
/// per service, shared across handler and worker threads).
#[derive(Debug)]
pub struct ResultCache {
    path: PathBuf,
    inner: Mutex<HashMap<String, CampaignRow>>,
}

impl ResultCache {
    /// Open (or create) the cache backed by `dir/gatherd.jsonl`, loading
    /// every stored row. Malformed store lines are a hard error, like
    /// campaign resume: a corrupted cache should be repaired or deleted,
    /// not silently half-loaded.
    pub fn open(dir: &Path) -> io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("gatherd.jsonl");
        let mut map = HashMap::new();
        if path.exists() {
            for row in store::read_rows(&path)? {
                if let Some(hash) = row.spec_hash() {
                    map.insert(hash, row);
                }
            }
        }
        Ok(ResultCache {
            path,
            inner: Mutex::new(map),
        })
    }

    /// The backing store file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Look up a result by spec hash.
    pub fn get(&self, hash: &str) -> Option<CampaignRow> {
        self.inner.lock().unwrap().get(hash).cloned()
    }

    /// Insert a freshly computed row, or return the row that beat it
    /// there (two racing misses of the same spec: the first insert wins
    /// and both callers serve identical bytes).
    ///
    /// Returns the canonical row plus the persistence error, if the
    /// store append failed. A failed append does **not** evict the row
    /// from the in-memory cache — an unwritable disk degrades to
    /// memory-only caching (hits keep working, byte-identical) instead
    /// of silently re-simulating the spec on every request; the caller
    /// surfaces the error to the operator.
    pub fn insert_or_get(&self, hash: &str, row: CampaignRow) -> (CampaignRow, Option<io::Error>) {
        let mut map = self.inner.lock().unwrap();
        if let Some(existing) = map.get(hash) {
            return (existing.clone(), None);
        }
        let persist = store::append_rows(&self.path, std::slice::from_ref(&row)).err();
        map.insert(hash.to_string(), row.clone());
        (row, persist)
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn replay_path(&self, hash: &str) -> PathBuf {
        self.path
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .join("replays")
            .join(format!("{hash}.replay"))
    }

    /// Persist a replay blob for `hash`, atomically (write to a temp file
    /// in the same directory, then rename over the final name).
    pub fn put_replay(&self, hash: &str, bytes: &[u8]) -> io::Result<()> {
        let path = self.replay_path(hash);
        let dir = path.parent().expect("replay path has a parent");
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(".{hash}.tmp"));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &path)
    }

    /// Load the stored replay blob for `hash`, if one exists.
    pub fn get_replay(&self, hash: &str) -> Option<Vec<u8>> {
        std::fs::read(self.replay_path(hash)).ok()
    }

    /// `true` when a replay blob is stored for `hash`.
    pub fn has_replay(&self, hash: &str) -> bool {
        self.replay_path(hash).is_file()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bench::campaign::spec_hash;
    use bench::scenario::{run_scenario, ScenarioSpec, StrategyKind};
    use workloads::Family;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gatherd-cache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persists_and_reloads_by_recomputed_hash() {
        let dir = scratch("reload");
        let spec = ScenarioSpec::strategy(Family::Rectangle, 16, 0, StrategyKind::paper());
        let hash = spec_hash(&spec);
        let row = CampaignRow::from_result(&run_scenario(&spec));

        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        assert!(cache.get(&hash).is_none());
        let (stored, persist) = cache.insert_or_get(&hash, row.clone());
        assert_eq!(stored, row);
        assert!(persist.is_none());
        assert_eq!(cache.len(), 1);

        // A second cache over the same directory sees the row, keyed by
        // the hash recomputed from its identity fields.
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.get(&hash), Some(row.clone()));

        // Racing insert of the same hash returns the first row untouched
        // and does not grow the store file.
        let mut other = row.clone();
        other.wall_us += 999_999;
        assert_eq!(reopened.insert_or_get(&hash, other).0, row);
        assert_eq!(store::read_rows(reopened.path()).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An unwritable store degrades to memory-only caching: the insert
    /// reports the persistence error but hits keep being served.
    #[test]
    fn append_failure_keeps_the_row_in_memory() {
        let dir = scratch("readonly");
        let spec = ScenarioSpec::strategy(Family::Rectangle, 16, 1, StrategyKind::paper());
        let hash = spec_hash(&spec);
        let row = CampaignRow::from_result(&run_scenario(&spec));
        let cache = ResultCache::open(&dir).unwrap();
        // Replace the store file with a directory so the append fails.
        std::fs::create_dir_all(cache.path()).unwrap();
        let (stored, persist) = cache.insert_or_get(&hash, row.clone());
        assert_eq!(stored, row);
        assert!(persist.is_some(), "append into a directory must fail");
        assert_eq!(cache.get(&hash), Some(row), "memory caching must survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Replay blobs round-trip through the side store and survive a
    /// reopen; an absent hash is a clean miss.
    #[test]
    fn replay_side_store_roundtrips() {
        let dir = scratch("replays");
        let cache = ResultCache::open(&dir).unwrap();
        assert!(!cache.has_replay("aaaabbbbccccdddd"));
        assert!(cache.get_replay("aaaabbbbccccdddd").is_none());
        let blob = vec![0x47, 0x52, 0x50, 0x4c, 1, 2, 3];
        cache.put_replay("aaaabbbbccccdddd", &blob).unwrap();
        assert!(cache.has_replay("aaaabbbbccccdddd"));
        assert_eq!(cache.get_replay("aaaabbbbccccdddd"), Some(blob.clone()));

        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.get_replay("aaaabbbbccccdddd"), Some(blob));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_cache_is_a_hard_error() {
        let dir = scratch("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("gatherd.jsonl"), "not json\n").unwrap();
        let err = ResultCache::open(&dir).expect_err("corrupt cache must error");
        assert!(err.to_string().contains("gatherd.jsonl"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
