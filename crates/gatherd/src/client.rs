//! The client side of the wire: one function speaking the same
//! one-request-per-connection HTTP/1.1 slice the server serves. Shared by
//! `gatherctl`, the integration tests, and the service bench.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A received response.
#[derive(Clone, Debug)]
pub struct Reply {
    /// Status code.
    pub status: u16,
    /// Response headers (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Body text.
    pub body: String,
}

impl Reply {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` for 2xx.
    pub fn ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Send one request and read the full response. `addr` is `host:port`;
/// `body` (when given) is sent with a `Content-Length`.
pub fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    // Longer than the server's SYNC_WAIT (300 s): a blocking run that
    // exhausts the server's patience must deliver its 202
    // poll-instead answer here rather than dying as a client timeout.
    stream.set_read_timeout(Some(Duration::from_secs(330)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw).map_err(|_| io::Error::other("non-utf8 response"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::other("response without header block"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::other(format!("bad status line '{status_line}'")))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(Reply {
        status,
        headers,
        body: body.to_string(),
    })
}

/// `POST /run` with a spec body; returns the reply.
pub fn post_run(addr: &str, spec_json: &str, async_mode: bool) -> io::Result<Reply> {
    let path = if async_mode { "/run?async" } else { "/run" };
    request(addr, "POST", path, Some(spec_json))
}
