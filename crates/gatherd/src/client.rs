//! The client side of the wire: plain request/response helpers plus a
//! chunked-stream reader for `/watch`, speaking the same HTTP/1.1 slice
//! the server serves. Shared by `gatherctl`, the integration tests, and
//! the service bench. Requests here send `Connection: close` — the
//! one-shot helpers rely on EOF framing; keep-alive is exercised by the
//! integration tests directly.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A received response.
#[derive(Clone, Debug)]
pub struct Reply {
    /// Status code.
    pub status: u16,
    /// Response headers (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Body text.
    pub body: String,
}

impl Reply {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` for 2xx.
    pub fn ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A received response with a byte body (`/replay` blobs are binary).
#[derive(Clone, Debug)]
pub struct RawReply {
    /// Status code.
    pub status: u16,
    /// Response headers (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

fn connect(addr: &str) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    // Longer than the server's SYNC_WAIT (300 s): a blocking run that
    // exhausts the server's patience must deliver its 202
    // poll-instead answer here rather than dying as a client timeout.
    stream.set_read_timeout(Some(Duration::from_secs(330)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    Ok(stream)
}

fn write_request(
    stream: &mut TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn send_request(addr: &str, method: &str, path: &str, body: &str) -> io::Result<TcpStream> {
    let mut stream = connect(addr)?;
    write_request(&mut stream, addr, method, path, body)?;
    Ok(stream)
}

/// Parsed response head: status, lowercased headers, body offset.
type Head = (u16, Vec<(String, String)>, usize);

fn parse_head(raw: &[u8]) -> io::Result<Head> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::other("response without header block"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| io::Error::other("non-utf8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::other(format!("bad status line '{status_line}'")))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers, head_end + 4))
}

/// Send one request and read the full response as bytes. `addr` is
/// `host:port`; `body` (when given) is sent with a `Content-Length`.
pub fn request_raw(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<RawReply> {
    let mut stream = send_request(addr, method, path, body.unwrap_or(""))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let (status, headers, body_start) = parse_head(&raw)?;
    Ok(RawReply {
        status,
        headers,
        body: raw[body_start..].to_vec(),
    })
}

/// [`request_raw`] with the body decoded as UTF-8 text (every endpoint
/// except `/replay` and `/watch`).
pub fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<Reply> {
    let raw = request_raw(addr, method, path, body)?;
    let body =
        String::from_utf8(raw.body).map_err(|_| io::Error::other("non-utf8 response body"))?;
    Ok(Reply {
        status: raw.status,
        headers: raw.headers,
        body,
    })
}

fn run_path(async_mode: bool, replay: bool) -> &'static str {
    match (async_mode, replay) {
        (true, true) => "/run?async&replay",
        (true, false) => "/run?async",
        (false, true) => "/run?replay",
        (false, false) => "/run",
    }
}

/// `POST /run` with a spec body; returns the reply. `replay` asks the
/// server to record the run (`?replay`).
pub fn post_run_opts(
    addr: &str,
    spec_json: &str,
    async_mode: bool,
    replay: bool,
) -> io::Result<Reply> {
    request(addr, "POST", run_path(async_mode, replay), Some(spec_json))
}

/// [`post_run_opts`] with client-side phase spans recorded into `trace`:
/// `connect` (TCP dial), `send` (request write), `wait` (time to first
/// response byte — for a cache miss this is the simulation), and `read`
/// (draining the rest). Backs `gatherctl run --trace-out`.
pub fn post_run_traced(
    addr: &str,
    spec_json: &str,
    async_mode: bool,
    replay: bool,
    trace: &obs::TraceEvents,
) -> io::Result<Reply> {
    let tid = obs::trace_tid();
    let mut mark = std::time::Instant::now();
    let span = |name: &'static str, mark: &mut std::time::Instant| {
        let now = std::time::Instant::now();
        trace.complete(name, tid, *mark, now.duration_since(*mark), None);
        *mark = now;
    };

    let mut stream = connect(addr)?;
    span("connect", &mut mark);
    write_request(
        &mut stream,
        addr,
        "POST",
        run_path(async_mode, replay),
        spec_json,
    )?;
    span("send", &mut mark);
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    let n = stream.read(&mut chunk)?;
    raw.extend_from_slice(&chunk[..n]);
    span("wait", &mut mark);
    stream.read_to_end(&mut raw)?;
    span("read", &mut mark);

    let (status, headers, body_start) = parse_head(&raw)?;
    let body = String::from_utf8(raw[body_start..].to_vec())
        .map_err(|_| io::Error::other("non-utf8 response body"))?;
    Ok(Reply {
        status,
        headers,
        body,
    })
}

/// `POST /run` with a spec body; returns the reply.
pub fn post_run(addr: &str, spec_json: &str, async_mode: bool) -> io::Result<Reply> {
    post_run_opts(addr, spec_json, async_mode, false)
}

/// Fetch a stored replay blob (`GET /replay/<hash>`).
pub fn get_replay(addr: &str, hash: &str) -> io::Result<RawReply> {
    request_raw(addr, "GET", &format!("/replay/{hash}"), None)
}

/// A live `/watch` stream: one encoded `LiveFrame` per HTTP chunk, read
/// incrementally with [`WatchStream::next_frame`] until the terminal
/// chunk.
#[derive(Debug)]
pub struct WatchStream {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
    done: bool,
}

impl WatchStream {
    /// Open the stream for a job. A non-200 answer (unknown job, job not
    /// recording) surfaces as an error carrying the status and body.
    pub fn open(addr: &str, job: u64) -> io::Result<WatchStream> {
        let mut stream = send_request(addr, "GET", &format!("/watch/{job}"), "")?;

        // Read until the full header block is in hand.
        let mut buf = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        let (status, headers, body_start) = loop {
            if let Ok(parsed) = parse_head(&buf) {
                break parsed;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        if status != 200 {
            let mut rest = buf[body_start..].to_vec();
            let _ = stream.read_to_end(&mut rest);
            let body = String::from_utf8_lossy(&rest).into_owned();
            return Err(io::Error::other(format!(
                "watch refused: HTTP {status} {body}"
            )));
        }
        let chunked = headers
            .iter()
            .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        if !chunked {
            return Err(io::Error::other("watch response is not chunked"));
        }
        Ok(WatchStream {
            stream,
            buf: buf[body_start..].to_vec(),
            pos: 0,
            done: false,
        })
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-stream",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// The next frame's bytes, or `None` once the terminal chunk arrives.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.done {
            return Ok(None);
        }
        // Parse one `size-hex\r\n payload \r\n` chunk, reading more as
        // needed.
        let size_line_end = loop {
            if let Some(i) = self.buf[self.pos..].windows(2).position(|w| w == b"\r\n") {
                break self.pos + i;
            }
            self.fill()?;
        };
        let size_text = std::str::from_utf8(&self.buf[self.pos..size_line_end])
            .map_err(|_| io::Error::other("non-utf8 chunk size"))?
            .trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| io::Error::other(format!("bad chunk size '{size_text}'")))?;
        let payload_start = size_line_end + 2;
        while self.buf.len() < payload_start + size + 2 {
            self.fill()?;
        }
        let payload = self.buf[payload_start..payload_start + size].to_vec();
        self.pos = payload_start + size + 2; // skip the trailing CRLF
                                             // Drop consumed bytes so a long stream stays bounded.
        if self.pos > 64 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        if size == 0 {
            self.done = true;
            return Ok(None);
        }
        Ok(Some(payload))
    }
}
