//! # gatherd
//!
//! Simulation-as-a-service: a **dependency-free** HTTP/1.1 front end for
//! the scenario pipeline, built on `std::net::TcpListener` like
//! everything else in this offline workspace. The service turns the
//! ROADMAP's "serve heavy traffic" direction into a concrete vertical
//! slice — socket to engine:
//!
//! | Endpoint | What it does |
//! |---|---|
//! | `POST /run` | Decode a [`ScenarioSpec`](bench::ScenarioSpec) (campaign JSON dialect), serve from the content-addressed cache or simulate; `?async` returns 202 + a job id instead of blocking; `?replay` additionally records the run's telemetry log |
//! | `GET /result/<spec_hash>` | Cache lookup by content hash — a hit never touches the engine |
//! | `GET /progress/<job>` | Live round/merge/guard counters of a queued/running/finished job |
//! | `GET /watch/<job>` | Stream a recording job's rounds live (chunked transfer; one [`LiveFrame`](chain_sim::LiveFrame) per chunk) |
//! | `GET /replay/<spec_hash>` | Download the recorded replay blob ([`ReplayReader`](chain_sim::ReplayReader) decodes it) |
//! | `GET /metrics` | Flat text metrics: cache, queue, job, and watcher counters plus uptime |
//! | `GET /healthz` | Queue depth, cache size, hit/miss/reject counters (JSON) |
//! | `POST /shutdown` | Drain both pools and exit cleanly |
//!
//! Connections are keep-alive per HTTP/1.1 semantics; `/watch` streams
//! until the run finishes and then closes.
//!
//! The load-bearing ideas, all reused from the existing stack:
//!
//! * **Content-addressed caching** — the cache key is
//!   [`bench::campaign::spec_hash`], the same versioned FNV-1a hash
//!   campaign resume keys on, and the cache file (`gatherd.jsonl`) is a
//!   campaign JSON Lines store. A repeated spec is answered from the
//!   store with a byte-identical `result` object, no simulation.
//! * **Bounded work** — a fixed worker pool and a bounded job queue;
//!   when the queue is full, `POST /run` gets 429 immediately
//!   (backpressure) instead of buffering unbounded work. Identical
//!   in-flight specs coalesce (single-flight) rather than running twice.
//! * **Observable runs** — workers attach a
//!   [`ProgressProbe`](chain_sim::ProgressProbe) observer; the progress
//!   endpoint reads its shared atomic slot without perturbing the run.
//!
//! See `docs/SERVICE.md` for the wire contract and `gatherctl` (this
//! crate's client binary) for a command-line driver.

#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod jobs;
pub mod server;

pub use cache::ResultCache;
pub use client::{
    get_replay, post_run, post_run_opts, request, request_raw, RawReply, Reply, WatchStream,
};
pub use jobs::{Job, JobState, JobTable, Submit, WATCH_RING_CAP};
pub use server::{Config, Server, ServerHandle, ServiceState};
