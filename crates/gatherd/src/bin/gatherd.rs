//! The `gatherd` service binary.
//!
//! ```text
//! gatherd [--addr HOST:PORT] [--workers N] [--handlers N] [--queue N] [--dir DIR]
//! ```
//!
//! * `--addr` — bind address; port 0 picks an ephemeral port (default
//!   `127.0.0.1:7117`). The bound address is printed to stdout as
//!   `gatherd listening on HOST:PORT` before serving, so scripts can
//!   capture the ephemeral port.
//! * `--workers` — simulation worker threads (0 = one per core).
//! * `--handlers` — connection handler threads (0 = default 16).
//! * `--queue` — job queue capacity before `POST /run` gets 429.
//! * `--dir` — cache directory; results persist in `DIR/gatherd.jsonl`
//!   (the campaign store format) and survive restarts.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::exit;

use gatherd::{Config, Server};

fn usage() -> ! {
    eprintln!(
        "usage: gatherd [--addr HOST:PORT] [--workers N] [--handlers N] [--queue N] [--dir DIR]"
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage();
            })
        };
        let parse_usize = |flag: &str, raw: String| -> usize {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} needs an integer (got '{raw}')");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => cfg.workers = parse_usize("--workers", value("--workers")),
            "--handlers" => cfg.handlers = parse_usize("--handlers", value("--handlers")),
            "--queue" => {
                cfg.queue = parse_usize("--queue", value("--queue"));
                if cfg.queue == 0 {
                    eprintln!("error: --queue must be positive");
                    usage();
                }
            }
            "--dir" => cfg.dir = PathBuf::from(value("--dir")),
            other => {
                eprintln!("error: unknown flag '{other}'");
                usage();
            }
        }
    }

    let server = match Server::bind(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start gatherd: {e}");
            exit(1);
        }
    };
    let state = server.state();
    println!("gatherd listening on {}", server.local_addr());
    eprintln!(
        "gatherd: {} cached results in {}, queue capacity {}",
        state.cache().len(),
        cfg.dir.display(),
        cfg.queue,
    );
    // Scripts parse the stdout line to find an ephemeral port; make sure
    // it is out before the accept loop blocks.
    let _ = std::io::stdout().flush();

    if let Err(e) = server.run() {
        eprintln!("error: gatherd terminated abnormally: {e}");
        exit(1);
    }
    eprintln!("gatherd: clean shutdown");
}
