//! `gatherctl` — the command-line client for a running `gatherd`.
//!
//! ```text
//! gatherctl health   --addr HOST:PORT
//! gatherctl run      --addr HOST:PORT --family F --n N --seed S --strategy K
//!                    [--scheduler S] [--async]
//! gatherctl raw      --addr HOST:PORT --body TEXT     # POST /run verbatim
//! gatherctl result   --addr HOST:PORT --hash H
//! gatherctl progress --addr HOST:PORT --job N
//! gatherctl flood    --addr HOST:PORT --count N --family F --n N --seed S --strategy K
//! gatherctl shutdown --addr HOST:PORT
//! ```
//!
//! Every command prints `HTTP <status>` followed by the response body and
//! exits 0 on 2xx, 3 on any other status, 1 on transport errors — so CI
//! can both grep the body and branch on the code. `flood` fires `count`
//! concurrent `POST /run`s with distinct seeds (starting at `--seed`) and
//! prints a status histogram (`200 x5 / 429 x3`); it exits 0 whenever
//! every request got *some* HTTP response.

use std::process::exit;

use gatherd::client;

fn usage() -> ! {
    eprintln!(
        "usage: gatherctl <health|run|raw|result|progress|flood|shutdown> --addr HOST:PORT \
         [--family F] [--n N] [--seed S] [--strategy K] [--scheduler S] [--async] \
         [--hash H] [--job N] [--count N] [--body TEXT]"
    );
    exit(2)
}

struct Cli {
    cmd: String,
    addr: String,
    family: String,
    n: u64,
    seed: u64,
    strategy: String,
    scheduler: Option<String>,
    r#async: bool,
    hash: String,
    job: u64,
    count: usize,
    body: String,
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage();
    };
    let known = [
        "health", "run", "raw", "result", "progress", "flood", "shutdown",
    ];
    if !known.contains(&cmd.as_str()) {
        eprintln!("error: unknown command '{cmd}'");
        usage();
    }
    let mut cli = Cli {
        cmd,
        addr: String::new(),
        family: "rectangle".to_string(),
        n: 64,
        seed: 0,
        strategy: "paper".to_string(),
        scheduler: None,
        r#async: false,
        hash: String::new(),
        job: 0,
        count: 8,
        body: String::new(),
    };
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage();
            })
        };
        let parse_u64 = |flag: &str, raw: String| -> u64 {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} needs an integer (got '{raw}')");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => cli.addr = value("--addr"),
            "--family" => cli.family = value("--family"),
            "--n" => cli.n = parse_u64("--n", value("--n")),
            "--seed" => cli.seed = parse_u64("--seed", value("--seed")),
            "--strategy" => cli.strategy = value("--strategy"),
            "--scheduler" => cli.scheduler = Some(value("--scheduler")),
            "--async" => cli.r#async = true,
            "--hash" => cli.hash = value("--hash"),
            "--job" => cli.job = parse_u64("--job", value("--job")),
            "--count" => cli.count = parse_u64("--count", value("--count")) as usize,
            "--body" => cli.body = value("--body"),
            other => {
                eprintln!("error: unknown flag '{other}'");
                usage();
            }
        }
    }
    if cli.addr.is_empty() {
        eprintln!("error: --addr is required");
        usage();
    }
    cli
}

fn spec_json(cli: &Cli, seed: u64) -> String {
    let scheduler = match &cli.scheduler {
        Some(s) => format!(",\"scheduler\":\"{s}\""),
        None => String::new(),
    };
    format!(
        "{{\"family\":\"{}\",\"n\":{},\"seed\":{seed},\"strategy\":\"{}\"{scheduler}}}",
        cli.family, cli.n, cli.strategy
    )
}

fn finish(reply: std::io::Result<client::Reply>) -> ! {
    match reply {
        Ok(r) => {
            println!("HTTP {}", r.status);
            println!("{}", r.body);
            exit(if r.ok() { 0 } else { 3 });
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}

fn main() {
    let cli = parse_cli();
    match cli.cmd.as_str() {
        "health" => finish(client::request(&cli.addr, "GET", "/healthz", None)),
        "run" => finish(client::post_run(
            &cli.addr,
            &spec_json(&cli, cli.seed),
            cli.r#async,
        )),
        "raw" => finish(client::request(&cli.addr, "POST", "/run", Some(&cli.body))),
        "result" => finish(client::request(
            &cli.addr,
            "GET",
            &format!("/result/{}", cli.hash),
            None,
        )),
        "progress" => finish(client::request(
            &cli.addr,
            "GET",
            &format!("/progress/{}", cli.job),
            None,
        )),
        "shutdown" => finish(client::request(&cli.addr, "POST", "/shutdown", None)),
        "flood" => {
            let replies: Vec<_> = (0..cli.count)
                .map(|i| {
                    let addr = cli.addr.clone();
                    let body = spec_json(&cli, cli.seed + i as u64);
                    let r#async = cli.r#async;
                    std::thread::spawn(move || client::post_run(&addr, &body, r#async))
                })
                .collect();
            let mut codes: Vec<u16> = Vec::new();
            let mut failures = 0usize;
            for t in replies {
                match t.join().expect("flood thread") {
                    Ok(r) => codes.push(r.status),
                    Err(_) => failures += 1,
                }
            }
            codes.sort_unstable();
            let mut parts: Vec<String> = Vec::new();
            let mut i = 0;
            while i < codes.len() {
                let code = codes[i];
                let run = codes[i..].iter().take_while(|c| **c == code).count();
                parts.push(format!("{code} x{run}"));
                i += run;
            }
            println!("flood: {}", parts.join(" / "));
            exit(if failures == 0 { 0 } else { 1 });
        }
        _ => unreachable!("command validated in parse_cli"),
    }
}
