//! `gatherctl` — the command-line client for a running `gatherd`.
//!
//! ```text
//! gatherctl health   --addr HOST:PORT
//! gatherctl metrics  --addr HOST:PORT
//! gatherctl run      --addr HOST:PORT --family F --n N --seed S --strategy K
//!                    [--scheduler S] [--geometry G] [--async] [--replay]
//!                    [--trace-out FILE]
//! gatherctl raw      --addr HOST:PORT --body TEXT     # POST /run verbatim
//! gatherctl result   --addr HOST:PORT --hash H
//! gatherctl progress --addr HOST:PORT --job N
//! gatherctl watch    --addr HOST:PORT --job N  [--rate MS] [--every K]
//! gatherctl replay   --addr HOST:PORT --hash H [--rate MS] [--every K]
//!                    [--seek R] [--until R]
//! gatherctl flood    --addr HOST:PORT --count N --family F --n N --seed S --strategy K
//!                    [--json]
//! gatherctl shutdown --addr HOST:PORT
//! ```
//!
//! Request commands print `HTTP <status>` followed by the response body
//! and exit 0 on 2xx, 3 on any other status, 1 on transport errors — so
//! CI can both grep the body and branch on the code. `flood` fires
//! `count` concurrent `POST /run`s with distinct seeds (starting at
//! `--seed`) and prints a status histogram (`200 x5 / 429 x3`) plus a
//! client-side latency summary (p50/p90/p99/max, microseconds); with
//! `--json` both come out as one machine-readable JSON object. It exits
//! 0 whenever every request got *some* HTTP response.
//!
//! `run --trace-out FILE` records client-side request phases (connect /
//! send / wait / read) as Chrome trace-event JSON — load FILE in
//! Perfetto; for a cache miss the `wait` span is the simulation.
//!
//! `watch` streams a recording job's rounds live (`GET /watch/<job>`)
//! and renders each frame through `chain_viz`; `replay` downloads a
//! stored run log (`GET /replay/<hash>`) and steps through it with the
//! verifying [`ReplayReader`] — no simulation
//! runs on either side. `--rate` paces frames in milliseconds (0 = as
//! fast as they come, the CI mode), `--every K` renders every Kth round
//! (terminal frames always render), and `--seek`/`--until` bound the
//! replayed window.

use std::process::exit;

use bench::GeometryKind;
use chain_sim::{LiveFrame, ReplayReader, SchedulerKind};
use gatherd::client;

fn usage() -> ! {
    eprintln!(
        "usage: gatherctl <health|metrics|run|raw|result|progress|watch|replay|flood|shutdown> \
         --addr HOST:PORT [--family F] [--n N] [--seed S] [--strategy K] [--scheduler S] \
         [--geometry G] [--async] [--replay] [--hash H] [--job N] [--count N] [--body TEXT] \
         [--rate MS] [--every K] [--seek R] [--until R] [--trace-out FILE] [--json]"
    );
    exit(2)
}

struct Cli {
    cmd: String,
    addr: String,
    family: String,
    n: u64,
    seed: u64,
    strategy: String,
    scheduler: Option<String>,
    geometry: Option<String>,
    r#async: bool,
    replay: bool,
    hash: String,
    job: u64,
    count: usize,
    body: String,
    rate: u64,
    every: u64,
    seek: u64,
    until: Option<u64>,
    trace_out: Option<String>,
    json: bool,
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage();
    };
    let known = [
        "health", "metrics", "run", "raw", "result", "progress", "watch", "replay", "flood",
        "shutdown",
    ];
    if !known.contains(&cmd.as_str()) {
        eprintln!("error: unknown command '{cmd}'");
        usage();
    }
    let mut cli = Cli {
        cmd,
        addr: String::new(),
        family: "rectangle".to_string(),
        n: 64,
        seed: 0,
        strategy: "paper".to_string(),
        scheduler: None,
        geometry: None,
        r#async: false,
        replay: false,
        hash: String::new(),
        job: 0,
        count: 8,
        body: String::new(),
        rate: 40,
        every: 1,
        seek: 0,
        until: None,
        trace_out: None,
        json: false,
    };
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage();
            })
        };
        let parse_u64 = |flag: &str, raw: String| -> u64 {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} needs an integer (got '{raw}')");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => cli.addr = value("--addr"),
            "--family" => cli.family = value("--family"),
            "--n" => cli.n = parse_u64("--n", value("--n")),
            "--seed" => cli.seed = parse_u64("--seed", value("--seed")),
            "--strategy" => cli.strategy = value("--strategy"),
            "--scheduler" => cli.scheduler = Some(value("--scheduler")),
            "--geometry" => cli.geometry = Some(value("--geometry")),
            "--async" => cli.r#async = true,
            "--replay" => cli.replay = true,
            "--hash" => cli.hash = value("--hash"),
            "--job" => cli.job = parse_u64("--job", value("--job")),
            "--count" => cli.count = parse_u64("--count", value("--count")) as usize,
            "--body" => cli.body = value("--body"),
            "--rate" => cli.rate = parse_u64("--rate", value("--rate")),
            "--every" => cli.every = parse_u64("--every", value("--every")).max(1),
            "--seek" => cli.seek = parse_u64("--seek", value("--seek")),
            "--until" => cli.until = Some(parse_u64("--until", value("--until"))),
            "--trace-out" => cli.trace_out = Some(value("--trace-out")),
            "--json" => cli.json = true,
            other => {
                eprintln!("error: unknown flag '{other}'");
                usage();
            }
        }
    }
    if cli.addr.is_empty() {
        eprintln!("error: --addr is required");
        usage();
    }
    // Registry names are validated client-side so a typo fails fast with
    // the full inventory and a usage exit (2), before any request is sent.
    if let Some(s) = &cli.scheduler {
        if SchedulerKind::from_name(s).is_none() {
            eprintln!(
                "error: unknown scheduler '{s}' (expected one of: {})",
                SchedulerKind::NAME_FORMS.join(", ")
            );
            exit(2);
        }
    }
    if let Some(g) = &cli.geometry {
        if GeometryKind::from_name(g).is_none() {
            eprintln!(
                "error: unknown geometry '{g}' (expected one of: {})",
                GeometryKind::ALL_NAMES.join(", ")
            );
            exit(2);
        }
    }
    cli
}

fn spec_json(cli: &Cli, seed: u64) -> String {
    let scheduler = match &cli.scheduler {
        Some(s) => format!(",\"scheduler\":\"{s}\""),
        None => String::new(),
    };
    let geometry = match &cli.geometry {
        Some(g) => format!(",\"geometry\":\"{g}\""),
        None => String::new(),
    };
    format!(
        "{{\"family\":\"{}\",\"n\":{},\"seed\":{seed},\"strategy\":\"{}\"{scheduler}{geometry}}}",
        cli.family, cli.n, cli.strategy
    )
}

fn finish(reply: std::io::Result<client::Reply>) -> ! {
    match reply {
        Ok(r) => {
            println!("HTTP {}", r.status);
            println!("{}", r.body);
            exit(if r.ok() { 0 } else { 3 });
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}

fn transport_err(e: impl std::fmt::Display) -> ! {
    eprintln!("error: {e}");
    exit(1);
}

/// Render one live/replayed round: a status line plus the chain art.
fn show_round(chain: &chain_sim::ClosedChain, status: &str) {
    println!("{status}");
    print!("{}", chain_viz::render(chain));
    println!();
}

fn pace(rate_ms: u64) {
    if rate_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(rate_ms));
    }
}

fn watch(cli: &Cli) -> ! {
    let mut stream =
        client::WatchStream::open(&cli.addr, cli.job).unwrap_or_else(|e| transport_err(e));
    let mut frames = 0u64;
    loop {
        match stream.next_frame() {
            Ok(Some(bytes)) => {
                let frame = LiveFrame::decode(&bytes).unwrap_or_else(|e| transport_err(e));
                if !(frame.finished || frame.round.is_multiple_of(cli.every)) {
                    continue;
                }
                let chain = frame.chain().unwrap_or_else(|e| transport_err(e));
                let mut status = format!(
                    "round {}  len {}  removed {}  guard_cancels {}",
                    frame.round, frame.len, frame.removed_total, frame.guard_cancels
                );
                if frame.gathered {
                    status.push_str("  [gathered]");
                }
                if frame.finished {
                    status.push_str("  [finished]");
                }
                show_round(&chain, &status);
                frames += 1;
                if !frame.finished {
                    pace(cli.rate);
                }
            }
            Ok(None) => break,
            Err(e) => transport_err(e),
        }
    }
    println!("watch: stream ended after {frames} rendered frames");
    exit(0);
}

fn replay(cli: &Cli) -> ! {
    if cli.hash.is_empty() {
        eprintln!("error: replay needs --hash");
        usage();
    }
    let raw = client::get_replay(&cli.addr, &cli.hash).unwrap_or_else(|e| transport_err(e));
    if raw.status != 200 {
        println!("HTTP {}", raw.status);
        println!("{}", String::from_utf8_lossy(&raw.body));
        exit(3);
    }
    let mut reader = ReplayReader::new(&raw.body).unwrap_or_else(|e| transport_err(e));
    if cli.seek == 0 {
        show_round(
            reader.chain(),
            &format!("round 0  len {}", reader.chain().len()),
        );
        pace(cli.rate);
    }
    loop {
        match reader.next_round() {
            Ok(Some(round)) => {
                let s = &round.summary;
                let done = s.round + 1;
                if done < cli.seek {
                    continue;
                }
                let past_until = cli.until.is_some_and(|u| done > u);
                let last = past_until || s.gathered;
                if !past_until && (last || done.is_multiple_of(cli.every)) {
                    let mut status = format!(
                        "round {done}  len {}  moved {}  removed {}  guard_cancels {}",
                        s.len_after, s.moved, s.removed, round.guard_cancels
                    );
                    if s.gathered {
                        status.push_str("  [gathered]");
                    }
                    show_round(reader.chain(), &status);
                    pace(cli.rate);
                }
                if past_until {
                    println!("replay: stopped at --until {}", cli.until.unwrap());
                    exit(0);
                }
            }
            Ok(None) => break,
            Err(e) => transport_err(format!("replay corrupt: {e}")),
        }
    }
    match reader.outcome() {
        Some(outcome) => println!(
            "replay: verified {} rounds, outcome {}",
            outcome.rounds(),
            outcome.name()
        ),
        None => println!("replay: verified {} rounds", reader.rounds_read()),
    }
    exit(0);
}

fn main() {
    let cli = parse_cli();
    match cli.cmd.as_str() {
        "health" => finish(client::request(&cli.addr, "GET", "/healthz", None)),
        "metrics" => finish(client::request(&cli.addr, "GET", "/metrics", None)),
        "watch" => watch(&cli),
        "replay" => replay(&cli),
        "run" => match &cli.trace_out {
            None => finish(client::post_run_opts(
                &cli.addr,
                &spec_json(&cli, cli.seed),
                cli.r#async,
                cli.replay,
            )),
            Some(path) => {
                let trace = obs::TraceEvents::default();
                let reply = client::post_run_traced(
                    &cli.addr,
                    &spec_json(&cli, cli.seed),
                    cli.r#async,
                    cli.replay,
                    &trace,
                );
                if reply.is_ok() {
                    if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
                        eprintln!("error: writing trace to {path}: {e}");
                        exit(1);
                    }
                    eprintln!("chrome trace written to {path} (load in Perfetto)");
                }
                finish(reply)
            }
        },
        "raw" => finish(client::request(&cli.addr, "POST", "/run", Some(&cli.body))),
        "result" => finish(client::request(
            &cli.addr,
            "GET",
            &format!("/result/{}", cli.hash),
            None,
        )),
        "progress" => finish(client::request(
            &cli.addr,
            "GET",
            &format!("/progress/{}", cli.job),
            None,
        )),
        "shutdown" => finish(client::request(&cli.addr, "POST", "/shutdown", None)),
        "flood" => {
            let latency = std::sync::Arc::new(obs::Histogram::new());
            let replies: Vec<_> = (0..cli.count)
                .map(|i| {
                    let addr = cli.addr.clone();
                    let body = spec_json(&cli, cli.seed + i as u64);
                    let r#async = cli.r#async;
                    let latency = latency.clone();
                    std::thread::spawn(move || {
                        let t0 = std::time::Instant::now();
                        let reply = client::post_run(&addr, &body, r#async);
                        // Transport failures have no service latency to
                        // attribute; only answered requests record.
                        if reply.is_ok() {
                            latency.record_duration_us(t0.elapsed());
                        }
                        reply
                    })
                })
                .collect();
            let mut codes: Vec<u16> = Vec::new();
            let mut failures = 0usize;
            for t in replies {
                match t.join().expect("flood thread") {
                    Ok(r) => codes.push(r.status),
                    Err(_) => failures += 1,
                }
            }
            codes.sort_unstable();
            let mut parts: Vec<String> = Vec::new();
            let mut i = 0;
            while i < codes.len() {
                let code = codes[i];
                let run = codes[i..].iter().take_while(|c| **c == code).count();
                parts.push(format!("{code} x{run}"));
                i += run;
            }
            let s = latency.summary();
            if cli.json {
                use bench::campaign::json::Json;
                let code_keys: Vec<String> = parts
                    .iter()
                    .map(|p| p.split(' ').next().unwrap().to_string())
                    .collect();
                let mut code_pairs: Vec<(&str, Json)> = Vec::new();
                let mut i = 0;
                for key in &code_keys {
                    let code: u16 = key.parse().unwrap();
                    let run = codes[i..].iter().take_while(|c| **c == code).count();
                    code_pairs.push((key, Json::usize(run)));
                    i += run;
                }
                let body = Json::obj(vec![
                    ("count", Json::usize(cli.count)),
                    ("failures", Json::usize(failures)),
                    ("codes", Json::obj(code_pairs)),
                    (
                        "latency_us",
                        Json::obj(vec![
                            ("count", Json::u64(s.count)),
                            ("p50", Json::u64(s.p50)),
                            ("p90", Json::u64(s.p90)),
                            ("p99", Json::u64(s.p99)),
                            ("max", Json::u64(s.max)),
                        ]),
                    ),
                ]);
                println!("{}", body.to_compact());
            } else {
                println!("flood: {}", parts.join(" / "));
                println!(
                    "latency_us: count {}  p50 {}  p90 {}  p99 {}  max {}",
                    s.count, s.p50, s.p90, s.p99, s.max
                );
            }
            exit(if failures == 0 { 0 } else { 1 });
        }
        _ => unreachable!("command validated in parse_cli"),
    }
}
