//! End-to-end telemetry tests: record-and-replay over the wire, live
//! `/watch` streaming, watcher passivity, keep-alive connections, and the
//! `/metrics` scrape — a real `gatherd` on an ephemeral port each time.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use chain_sim::{LiveFrame, ReplayReader};
use gatherd::{client, Config, Server};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gatherd-telem-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &std::path::Path) -> Config {
    Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        handlers: 16,
        queue: 32,
        dir: dir.to_path_buf(),
    }
}

fn spec_body(family: &str, n: usize, seed: u64, strategy: &str) -> String {
    format!("{{\"family\":\"{family}\",\"n\":{n},\"seed\":{seed},\"strategy\":\"{strategy}\"}}")
}

/// The `result` object of a response envelope (always the last field).
fn result_bytes(body: &str) -> &str {
    let at = body.find("\"result\":").expect("envelope carries a result");
    &body[at + "\"result\":".len()..body.len() - 1]
}

/// First integer following `"key":` in a JSON body.
fn json_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// First string following `"key":"` in a JSON body.
fn json_str<'a>(body: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":\"");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"));
    let rest = &body[at + pat.len()..];
    &rest[..rest.find('"').unwrap()]
}

/// Poll `/result/<hash>` until the row lands (the watch stream closes a
/// moment before the worker caches the row, so an immediate fetch races).
fn wait_result(addr: &str, hash: &str) -> client::Reply {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let r = client::request(addr, "GET", &format!("/result/{hash}"), None).unwrap();
        if r.status == 200 {
            return r;
        }
        assert!(Instant::now() < deadline, "result never landed for {hash}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One counter from the `/metrics` scrape.
fn metric(addr: &str, name: &str) -> u64 {
    let reply = client::request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(reply.status, 200);
    let prefix = format!("gatherd_{name} ");
    reply
        .body
        .lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("no gatherd_{name} in:\n{}", reply.body))
        .parse()
        .unwrap()
}

/// Acceptance: a `?replay` run persists a replay that the verifying
/// reader replays to exactly the row's round count; serving it is pure
/// artifact download — the job and miss counters stay flat.
#[test]
fn replay_records_persists_and_verifies() {
    let dir = scratch("replay");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    let body = spec_body("rectangle", 48, 7, "paper");
    let reply = client::post_run_opts(&addr, &body, false, true).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(reply.header("x-gatherd-cache"), Some("miss"));
    let hash = json_str(&reply.body, "spec_hash").to_string();
    let rounds = json_u64(result_bytes(&reply.body), "rounds");

    let jobs_before = metric(&addr, "jobs_run");
    let misses_before = metric(&addr, "cache_misses");
    assert_eq!(metric(&addr, "replays_stored"), 1);

    // Download and fully verify the recorded run.
    let raw = client::get_replay(&addr, &hash).unwrap();
    assert_eq!(raw.status, 200);
    let mut reader = ReplayReader::new(&raw.body).unwrap();
    let mut replayed = 0u64;
    while reader.next_round().unwrap().is_some() {
        replayed += 1;
    }
    assert_eq!(replayed, rounds, "replay length must match the row");
    assert_eq!(reader.outcome().unwrap().rounds(), rounds);

    // Serving the replay re-simulated nothing and touched no result-cache
    // counter.
    assert_eq!(metric(&addr, "jobs_run"), jobs_before);
    assert_eq!(metric(&addr, "cache_misses"), misses_before);

    // A repeated `?replay` run is now a pure cache hit.
    let again = client::post_run_opts(&addr, &body, false, true).unwrap();
    assert_eq!(again.header("x-gatherd-cache"), Some("hit"));
    assert_eq!(result_bytes(&again.body), result_bytes(&reply.body));
    assert_eq!(metric(&addr, "jobs_run"), jobs_before);

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A row cached without a replay answers plain requests, but a `?replay`
/// request re-simulates once to record — and serves the *original* row
/// bytes (the cache keeps the first row).
#[test]
fn replay_request_on_a_plain_row_records_once() {
    let dir = scratch("upgrade");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    let body = spec_body("skyline", 32, 3, "global-vision");
    let plain = client::post_run(&addr, &body, false).unwrap();
    assert_eq!(plain.header("x-gatherd-cache"), Some("miss"));
    let hash = json_str(&plain.body, "spec_hash").to_string();
    assert_eq!(client::get_replay(&addr, &hash).unwrap().status, 404);

    let recording = client::post_run_opts(&addr, &body, false, true).unwrap();
    assert_eq!(
        recording.header("x-gatherd-cache"),
        Some("miss"),
        "a row without a replay must re-run to record"
    );
    assert_eq!(result_bytes(&recording.body), result_bytes(&plain.body));
    assert_eq!(client::get_replay(&addr, &hash).unwrap().status, 200);

    // Now both flavors hit.
    for replay in [false, true] {
        let r = client::post_run_opts(&addr, &body, false, replay).unwrap();
        assert_eq!(r.header("x-gatherd-cache"), Some("hit"));
    }

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance: `/watch` streams decodable frames ending in a finished
/// frame whose round count matches the result row; watcher counters move.
#[test]
fn watch_streams_a_recording_run_to_completion() {
    let dir = scratch("watch");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    let body = spec_body("comb", 64, 1, "paper");
    let accepted = client::post_run_opts(&addr, &body, true, true).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job = json_u64(&accepted.body, "job");
    let hash = json_str(&accepted.body, "spec_hash").to_string();

    let mut stream = client::WatchStream::open(&addr, job).unwrap();
    let mut last: Option<LiveFrame> = None;
    let mut frames = 0u64;
    while let Some(bytes) = stream.next_frame().unwrap() {
        let frame = LiveFrame::decode(&bytes).unwrap();
        frame.chain().unwrap(); // every frame carries a valid chain
        last = Some(frame);
        frames += 1;
    }
    let last = last.expect("stream carries frames");
    assert!(last.finished, "stream must end with the finished frame");
    assert!(frames >= 2, "initial + final at minimum");

    let result = wait_result(&addr, &hash);
    assert_eq!(last.round, json_u64(result_bytes(&result.body), "rounds"));

    assert!(metric(&addr, "watchers_total") >= 1);
    assert_eq!(metric(&addr, "watchers_active"), 0);

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance (passivity): the result row of a watched, recorded run is
/// byte-identical to the same spec run plain on a separate service.
#[test]
fn watched_runs_are_byte_identical_to_unwatched() {
    let dir_a = scratch("passive-a");
    let dir_b = scratch("passive-b");
    let a = Server::spawn(config(&dir_a)).unwrap();
    let b = Server::spawn(config(&dir_b)).unwrap();

    let body = spec_body("rectangle", 96, 5, "paper");

    // Server A: async recorded run with a live watcher attached.
    let accepted = client::post_run_opts(&a.addr(), &body, true, true).unwrap();
    assert_eq!(accepted.status, 202);
    let job = json_u64(&accepted.body, "job");
    let hash = json_str(&accepted.body, "spec_hash").to_string();
    let mut stream = client::WatchStream::open(&a.addr(), job).unwrap();
    while stream.next_frame().unwrap().is_some() {}
    let watched = wait_result(&a.addr(), &hash);

    // Server B: the same spec, plain and unwatched.
    let plain = client::post_run(&b.addr(), &body, false).unwrap();
    assert_eq!(plain.status, 200);

    assert_eq!(json_str(&plain.body, "spec_hash"), hash);
    // `wall_us` is wall-clock noise; every simulated quantity must match
    // byte for byte.
    let mask_wall = |row: &str| -> String {
        let at = row.find("\"wall_us\":").expect("row carries wall_us");
        let end = at
            + "\"wall_us\":".len()
            + row[at + "\"wall_us\":".len()..]
                .find(',')
                .expect("wall_us is not last");
        format!("{}{}", &row[..at], &row[end + 1..])
    };
    assert_eq!(
        mask_wall(result_bytes(&watched.body)),
        mask_wall(result_bytes(&plain.body)),
        "watching and recording must not perturb the run"
    );

    a.shutdown().unwrap();
    b.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Acceptance: a watcher that never reads must not slow the simulation —
/// the job completes while the watcher's socket sits full.
#[test]
fn a_stalled_watcher_does_not_block_the_run() {
    let dir = scratch("stalled");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    let body = spec_body("skyline", 96, 2, "paper");
    let accepted = client::post_run_opts(&addr, &body, true, true).unwrap();
    assert_eq!(accepted.status, 202);
    let job = json_u64(&accepted.body, "job");
    let hash = json_str(&accepted.body, "spec_hash").to_string();

    // Connect to /watch and never read a byte.
    let mut stalled = TcpStream::connect(&addr).unwrap();
    stalled
        .write_all(format!("GET /watch/{job} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    stalled.flush().unwrap();

    // The run must finish promptly regardless.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let r = client::request(&addr, "GET", &format!("/result/{hash}"), None).unwrap();
        if r.status == 200 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "run did not complete under a stalled watcher"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Release the handler before shutdown so its blocked write fails
    // fast instead of waiting out the write timeout.
    drop(stalled);
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Watch and replay requests that cannot be served fail cleanly: plain
/// jobs are not watchable, open-chain strategies are not recordable, and
/// malformed hashes/ids are 400s.
#[test]
fn telemetry_validation_errors() {
    let dir = scratch("validation");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    // A plain async job has no ring to watch.
    let accepted = client::post_run(&addr, &spec_body("rectangle", 32, 0, "paper"), true).unwrap();
    assert_eq!(accepted.status, 202);
    let job = json_u64(&accepted.body, "job");
    let err = client::WatchStream::open(&addr, job).unwrap_err();
    assert!(err.to_string().contains("400"), "{err}");

    // Open-chain strategies run outside the engine: no replay.
    let refused = client::post_run_opts(
        &addr,
        &spec_body("rectangle", 32, 0, "open-zip"),
        false,
        true,
    )
    .unwrap();
    assert_eq!(refused.status, 400, "{}", refused.body);
    assert!(refused.body.contains("closed-chain"), "{}", refused.body);

    // Unknown job, malformed id, malformed/unknown hashes.
    assert!(client::WatchStream::open(&addr, 999_999).is_err());
    let r = client::request(&addr, "GET", "/watch/zebra", None).unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    assert_eq!(client::get_replay(&addr, "zebra").unwrap().status, 400);
    assert_eq!(
        client::get_replay(&addr, "0123456789abcdef")
            .unwrap()
            .status,
        404
    );

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Keep-alive: two requests served over one socket, with keep-alive
/// advertised on the first and close honored on the second.
#[test]
fn keep_alive_serves_sequential_requests_on_one_socket() {
    let dir = scratch("keepalive");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let read_one = |stream: &mut TcpStream| -> (String, String) {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            // Parse once the header block and the advertised body length
            // are both in hand.
            if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
                let content_length: usize = head
                    .lines()
                    .find_map(|l| {
                        l.to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .map(str::trim)
                            .map(String::from)
                    })
                    .unwrap()
                    .parse()
                    .unwrap();
                if buf.len() >= head_end + 4 + content_length {
                    let body =
                        String::from_utf8_lossy(&buf[head_end + 4..head_end + 4 + content_length])
                            .into_owned();
                    buf.drain(..head_end + 4 + content_length);
                    assert!(buf.is_empty(), "unexpected pipelined bytes");
                    return (head, body);
                }
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed a keep-alive connection early");
            buf.extend_from_slice(&chunk[..n]);
        }
    };

    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let (head1, body1) = read_one(&mut stream);
    assert!(head1.starts_with("HTTP/1.1 200"), "{head1}");
    assert!(head1.contains("Connection: keep-alive"), "{head1}");
    assert!(body1.contains("\"status\":\"ok\""));

    // Same socket, second request, explicit close.
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (head2, body2) = read_one(&mut stream);
    assert!(head2.starts_with("HTTP/1.1 200"), "{head2}");
    assert!(head2.contains("Connection: close"), "{head2}");
    assert!(body2.contains("gatherd_uptime_seconds"));

    // The server honors the close: EOF follows.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `/metrics` is a plain-text scrape whose counters move with the
/// service, and `/progress` reports guard activity.
#[test]
fn metrics_and_guarded_progress() {
    let dir = scratch("metrics");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    let reply = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.header("content-type"),
        Some("text/plain; charset=utf-8")
    );
    for name in [
        "uptime_seconds",
        "workers",
        "queue_depth",
        "cache_entries",
        "cache_hits",
        "cache_misses",
        "jobs_run",
        "watchers_active",
        "replays_stored",
    ] {
        assert!(
            reply.body.contains(&format!("gatherd_{name} ")),
            "missing gatherd_{name} in:\n{}",
            reply.body
        );
    }
    assert_eq!(metric(&addr, "jobs_run"), 0);

    // A paper-ssync run under an adversarial scheduler exercises the
    // chain guard; progress must surface the counter.
    let body = "{\"family\":\"rectangle\",\"n\":48,\"seed\":0,\"strategy\":\"paper-ssync\",\
                \"scheduler\":\"rand50\"}"
        .to_string();
    let accepted = client::post_run_opts(&addr, &body, true, false).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job = json_u64(&accepted.body, "job");

    let deadline = Instant::now() + Duration::from_secs(60);
    let final_progress = loop {
        let p = client::request(&addr, "GET", &format!("/progress/{job}"), None).unwrap();
        assert_eq!(p.status, 200);
        assert!(
            p.body.contains("\"guard_cancels\":"),
            "progress must report guard activity: {}",
            p.body
        );
        if p.body.contains("\"finished\":true") {
            break p;
        }
        assert!(Instant::now() < deadline, "job did not finish");
        std::thread::sleep(Duration::from_millis(5));
    };
    let _ = json_u64(&final_progress.body, "guard_cancels");

    assert_eq!(metric(&addr, "jobs_run"), 1);
    assert_eq!(metric(&addr, "cache_misses"), 1);

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
