//! End-to-end service tests: a real `gatherd` on an ephemeral port,
//! driven over real sockets by client threads — concurrency, cache
//! semantics (miss → hit, byte-identical replays), live progress,
//! backpressure, validation, and restart persistence.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use bench::campaign::json::Json;
use bench::campaign::spec_hash;
use bench::scenario::{run_scenario, ScenarioSpec, StrategyKind};
use gatherd::{client, Config, Server};
use workloads::Family;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gatherd-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &std::path::Path) -> Config {
    Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        handlers: 16,
        queue: 32,
        dir: dir.to_path_buf(),
    }
}

fn spec_body(family: &str, n: usize, seed: u64, strategy: &str) -> String {
    format!("{{\"family\":\"{family}\",\"n\":{n},\"seed\":{seed},\"strategy\":\"{strategy}\"}}")
}

/// The `result` object of a response envelope (always the last field).
fn result_bytes(body: &str) -> &str {
    let at = body.find("\"result\":").expect("envelope carries a result");
    &body[at + "\"result\":".len()..body.len() - 1]
}

/// Acceptance: ≥ 8 concurrent `POST /run`s are served correctly (each
/// result matches a local run of the same spec), and a repeated wave is
/// answered from the cache — marked in the metadata, byte-identical
/// `result` objects, engine untouched (miss counter flat).
#[test]
fn serves_eight_concurrent_runs_then_replays_from_cache() {
    let dir = scratch("concurrent");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    let specs: Vec<(ScenarioSpec, String)> = (0..8)
        .map(|i| {
            let family = [Family::Rectangle, Family::Skyline][i % 2];
            let strategy = if i % 3 == 0 {
                StrategyKind::GlobalVision
            } else {
                StrategyKind::paper()
            };
            let spec = ScenarioSpec::strategy(family, 48 + 4 * i, i as u64, strategy);
            let body = spec_body(family.name(), spec.n, spec.seed, spec.strategy.name());
            (spec, body)
        })
        .collect();

    let wave = |expect_cached: bool| -> Vec<String> {
        let threads: Vec<_> = specs
            .iter()
            .map(|(_, body)| {
                let addr = addr.clone();
                let body = body.clone();
                std::thread::spawn(move || client::post_run(&addr, &body, false).unwrap())
            })
            .collect();
        threads
            .into_iter()
            .map(|t| {
                let reply = t.join().unwrap();
                assert_eq!(reply.status, 200, "{}", reply.body);
                let verdict = if expect_cached { "hit" } else { "miss" };
                assert_eq!(reply.header("x-gatherd-cache"), Some(verdict));
                let v = Json::parse(&reply.body).unwrap();
                assert_eq!(v.get("cached"), Some(&Json::Bool(expect_cached)));
                reply.body
            })
            .collect()
    };

    let first = wave(false);
    // Every response carries the right hash and agrees with a local run.
    for ((spec, _), body) in specs.iter().zip(&first) {
        let v = Json::parse(body).unwrap();
        assert_eq!(
            v.get("spec_hash").unwrap().as_str(),
            Some(spec_hash(spec).as_str())
        );
        let result = v.get("result").unwrap();
        let local = run_scenario(spec);
        assert_eq!(
            result.get("rounds").unwrap().as_u64(),
            Some(local.outcome.rounds()),
            "{spec:?}"
        );
        assert_eq!(
            result.get("merges").unwrap().as_usize(),
            Some(local.merges_total)
        );
        assert_eq!(result.get("outcome").unwrap().as_str(), Some("gathered"));
    }

    let misses_after_first = {
        let health = client::request(&addr, "GET", "/healthz", None).unwrap();
        Json::parse(&health.body)
            .unwrap()
            .get("misses")
            .unwrap()
            .as_u64()
            .unwrap()
    };

    let second = wave(true);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            result_bytes(a),
            result_bytes(b),
            "cached replay must be byte-identical"
        );
    }

    // The hit wave touched neither the engine nor the miss counter.
    let health = client::request(&addr, "GET", "/healthz", None).unwrap();
    let v = Json::parse(&health.body).unwrap();
    assert_eq!(v.get("misses").unwrap().as_u64(), Some(misses_after_first));
    assert_eq!(v.get("hits").unwrap().as_u64(), Some(8));
    assert_eq!(v.get("cache_entries").unwrap().as_usize(), Some(8));
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `GET /result/<hash>` answers from the cache without a run, and the
/// cache survives a full service restart (JSON Lines persistence).
#[test]
fn results_are_addressable_and_survive_restart() {
    let dir = scratch("restart");
    let spec = ScenarioSpec::strategy(Family::Comb, 40, 3, StrategyKind::paper());
    let hash = spec_hash(&spec);
    let body = spec_body("comb", 40, 3, "paper");

    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();
    // Unknown hash first: 404 with the hash named.
    let miss = client::request(&addr, "GET", &format!("/result/{hash}"), None).unwrap();
    assert_eq!(miss.status, 404);
    assert!(miss.body.contains(&hash));

    let run = client::post_run(&addr, &body, false).unwrap();
    assert_eq!(run.status, 200);
    let by_hash = client::request(&addr, "GET", &format!("/result/{hash}"), None).unwrap();
    assert_eq!(by_hash.status, 200);
    assert_eq!(result_bytes(&run.body), result_bytes(&by_hash.body));
    handle.shutdown().unwrap();

    // A fresh service over the same directory serves the result as a hit.
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();
    let replay = client::post_run(&addr, &body, false).unwrap();
    assert_eq!(replay.status, 200);
    assert_eq!(replay.header("x-gatherd-cache"), Some("hit"));
    assert_eq!(result_bytes(&run.body), result_bytes(&replay.body));
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Async submission + the progress endpoint: a job is observable while
/// queued/running and reports its final counters once done.
#[test]
fn async_jobs_stream_progress() {
    let dir = scratch("progress");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    let body = spec_body("rectangle", 256, 0, "paper");
    let accepted = client::post_run(&addr, &body, true).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let v = Json::parse(&accepted.body).unwrap();
    let job = v.get("job").unwrap().as_u64().unwrap();
    let hash = v.get("spec_hash").unwrap().as_str().unwrap().to_string();

    // Poll until done; states observed must stay in the job vocabulary.
    let deadline = Instant::now() + Duration::from_secs(60);
    let final_snapshot = loop {
        assert!(Instant::now() < deadline, "job never finished");
        let p = client::request(&addr, "GET", &format!("/progress/{job}"), None).unwrap();
        assert_eq!(p.status, 200, "{}", p.body);
        let v = Json::parse(&p.body).unwrap();
        let state = v.get("state").unwrap().as_str().unwrap().to_string();
        assert!(
            ["queued", "running", "done"].contains(&state.as_str()),
            "{state}"
        );
        if state == "done" {
            break v;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(
        final_snapshot.get("finished"),
        Some(&Json::Bool(true)),
        "{final_snapshot:?}"
    );
    assert!(final_snapshot.get("round").unwrap().as_u64().unwrap() > 0);
    assert!(
        final_snapshot.get("wall_us").unwrap().as_u64().unwrap() > 0,
        "a finished job reports end-to-end wall time"
    );

    // The finished job's result is now content-addressable.
    let result = client::request(&addr, "GET", &format!("/result/{hash}"), None).unwrap();
    assert_eq!(result.status, 200);
    // And the progress snapshot agrees with the cached row.
    let row = Json::parse(result_bytes(&result.body)).unwrap();
    assert_eq!(
        final_snapshot.get("removed").unwrap().as_usize(),
        row.get("merges").unwrap().as_usize()
    );

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Backpressure: with one worker and a 4-deep queue, a burst of 8
/// distinct expensive submissions is partially refused with 429 — the
/// queue admits its capacity and rejects the rest instead of buffering.
#[test]
fn full_queue_rejects_with_429() {
    let dir = scratch("backpressure");
    let handle = Server::spawn(Config {
        workers: 1,
        queue: 4,
        ..config(&dir)
    })
    .unwrap();
    let addr = handle.addr();

    let threads: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            let body = spec_body("rectangle", 512, 100 + i, "paper");
            std::thread::spawn(move || client::post_run(&addr, &body, true).unwrap())
        })
        .collect();
    let statuses: Vec<u16> = threads
        .into_iter()
        .map(|t| t.join().unwrap().status)
        .collect();

    let accepted = statuses.iter().filter(|s| **s == 202).count();
    let rejected = statuses.iter().filter(|s| **s == 429).count();
    assert_eq!(
        accepted + rejected,
        8,
        "only 202/429 expected: {statuses:?}"
    );
    assert!(
        accepted >= 4,
        "the queue must admit its capacity: {statuses:?}"
    );
    assert!(rejected >= 1, "an 8-burst into a 4-queue must backpressure");

    // Rejections are visible in healthz and carry the capacity.
    let health = client::request(&addr, "GET", "/healthz", None).unwrap();
    let v = Json::parse(&health.body).unwrap();
    assert!(v.get("rejected").unwrap().as_u64().unwrap() >= 1);

    handle.shutdown().unwrap(); // drains the admitted jobs first
    let _ = std::fs::remove_dir_all(&dir);
}

/// Validation and routing: malformed specs get 400 with a diagnosable
/// error, unknown resources 404, wrong methods 405 — never a hang or a
/// panic.
#[test]
fn malformed_requests_are_rejected_cleanly() {
    let dir = scratch("validation");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    let cases: [(&str, &str); 4] = [
        ("this is not json", "malformed JSON"),
        ("{\"family\":\"rectangle\"}", "'n'"),
        (
            "{\"family\":\"nope\",\"n\":64,\"seed\":0,\"strategy\":\"paper\"}",
            "unknown family",
        ),
        (
            "{\"family\":\"rectangle\",\"n\":64,\"seed\":0,\"strategy\":\"open-zip\",\"scheduler\":\"rr2\"}",
            "SSYNC",
        ),
    ];
    for (body, needle) in cases {
        let reply = client::request(&addr, "POST", "/run", Some(body)).unwrap();
        assert_eq!(reply.status, 400, "{body}: {}", reply.body);
        assert!(reply.body.contains(needle), "{body}: {}", reply.body);
    }

    let bad_hash = client::request(&addr, "GET", "/result/nothex", None).unwrap();
    assert_eq!(bad_hash.status, 400);
    let no_job = client::request(&addr, "GET", "/progress/99999", None).unwrap();
    assert_eq!(no_job.status, 404);
    let no_route = client::request(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(no_route.status, 404);
    let bad_method = client::request(&addr, "DELETE", "/run", None).unwrap();
    assert_eq!(bad_method.status, 405);

    // Bad requests are counted, and none of them touched the engine.
    let health = client::request(&addr, "GET", "/healthz", None).unwrap();
    let v = Json::parse(&health.body).unwrap();
    assert_eq!(v.get("bad_requests").unwrap().as_u64(), Some(4));
    assert_eq!(v.get("misses").unwrap().as_u64(), Some(0));
    assert_eq!(v.get("cache_entries").unwrap().as_usize(), Some(0));

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// SSYNC specs flow through the wire too: scheduler-qualified requests
/// hash distinctly and cache independently.
#[test]
fn scheduler_axis_is_part_of_the_cache_key() {
    let dir = scratch("scheduler");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    let fsync = spec_body("rectangle", 48, 0, "compass-se");
    let kfair =
        "{\"family\":\"rectangle\",\"n\":48,\"seed\":0,\"strategy\":\"compass-se\",\"scheduler\":\"kfair4\"}"
            .to_string();
    let a = client::post_run(&addr, &fsync, false).unwrap();
    let b = client::post_run(&addr, &kfair, false).unwrap();
    assert_eq!((a.status, b.status), (200, 200));
    let ha = Json::parse(&a.body)
        .unwrap()
        .get("spec_hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let hb = Json::parse(&b.body)
        .unwrap()
        .get("spec_hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert_ne!(ha, hb, "scheduler must be part of the identity");
    // Both replay as hits under their own key.
    assert_eq!(
        client::post_run(&addr, &fsync, false)
            .unwrap()
            .header("x-gatherd-cache"),
        Some("hit")
    );
    assert_eq!(
        client::post_run(&addr, &kfair, false)
            .unwrap()
            .header("x-gatherd-cache"),
        Some("hit")
    );

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The SSYNC repair is serveable end to end: a `paper-ssync` job under a
/// semi-synchronous scheduler — the exact combination that drives the
/// plain `paper` strategy to `ChainBroken` — gathers through the full
/// queue → engine → cache path.
#[test]
fn paper_ssync_jobs_gather_under_ssync_schedulers() {
    let dir = scratch("paper-ssync");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    let body =
        "{\"family\":\"rectangle\",\"n\":48,\"seed\":0,\"strategy\":\"paper-ssync\",\"scheduler\":\"rr2\"}";
    let reply = client::post_run(&addr, body, false).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    let v = Json::parse(&reply.body).unwrap();
    let result = v.get("result").unwrap();
    assert_eq!(result.get("outcome").unwrap().as_str(), Some("gathered"));

    // The plain paper strategy on the identical workload must still break
    // — the repair is a distinct strategy, not a behavior change.
    let broken =
        "{\"family\":\"rectangle\",\"n\":48,\"seed\":0,\"strategy\":\"paper\",\"scheduler\":\"rr2\"}";
    let reply = client::post_run(&addr, broken, false).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    let v = Json::parse(&reply.body).unwrap();
    let result = v.get("result").unwrap();
    assert_eq!(
        result.get("outcome").unwrap().as_str(),
        Some("chain-broken")
    );

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Observability: `/metrics` exposes request-latency, queue-wait, and
/// run-duration histograms whose counts cover the requests served, and
/// `GET /metrics?json` renders the same digests as parseable JSON.
#[test]
fn metrics_expose_latency_histograms() {
    let dir = scratch("obs");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    let body = spec_body("rectangle", 48, 7, "paper");
    let miss = client::post_run(&addr, &body, false).unwrap();
    assert_eq!(miss.status, 200, "{}", miss.body);
    assert_eq!(miss.header("x-gatherd-cache"), Some("miss"));
    let hit = client::post_run(&addr, &body, false).unwrap();
    assert_eq!(hit.header("x-gatherd-cache"), Some("hit"));

    let text = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(text.status, 200);
    let find = |name: &str| -> u64 {
        text.body
            .lines()
            .find_map(|l| l.strip_prefix(&format!("gatherd_{name} ")))
            .unwrap_or_else(|| panic!("missing gatherd_{name} in:\n{}", text.body))
            .parse()
            .unwrap()
    };
    // One miss, one hit, one simulation through the queue.
    assert_eq!(find("request_us_run_miss_count"), 1);
    assert_eq!(find("request_us_run_hit_count"), 1);
    assert_eq!(find("queue_wait_us_count"), 1);
    assert_eq!(find("run_duration_us_count"), 1);
    // The digests are internally consistent (quantiles bounded by max).
    assert!(find("request_us_run_miss_p50") <= find("request_us_run_miss_max"));
    assert!(find("run_duration_us_sum") > 0, "a simulation took > 1us");

    // The JSON variant parses and carries the same digests.
    let json = client::request(&addr, "GET", "/metrics?json", None).unwrap();
    assert_eq!(json.status, 200);
    let v = Json::parse(&json.body).unwrap();
    let counters = v.get("counters").unwrap();
    assert_eq!(counters.get("cache_hits").unwrap().as_u64(), Some(1));
    assert_eq!(counters.get("cache_misses").unwrap().as_u64(), Some(1));
    let hists = v.get("histograms").unwrap();
    let miss_h = hists.get("request_us_run_miss").unwrap();
    assert_eq!(miss_h.get("count").unwrap().as_u64(), Some(1));
    let (p50, p99, max) = (
        miss_h.get("p50_us").unwrap().as_u64().unwrap(),
        miss_h.get("p99_us").unwrap().as_u64().unwrap(),
        miss_h.get("max_us").unwrap().as_u64().unwrap(),
    );
    assert!(p50 <= p99 && p99 <= max, "digest quantiles must be ordered");
    // The two expositions agree on the one sample they both digest.
    assert_eq!(max, find("request_us_run_miss_max"));

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Euclidean runs are serveable end to end, and the kernel-only service
/// features (replay recording, SSYNC schedulers) reject euclid specs at
/// decode time with full-inventory errors.
#[test]
fn euclid_jobs_run_and_kernel_only_paths_reject() {
    let dir = scratch("euclid");
    let handle = Server::spawn(config(&dir)).unwrap();
    let addr = handle.addr();

    // A euclid-chain run flows through queue → Euclidean backend → cache.
    let body = "{\"family\":\"rectangle\",\"n\":48,\"seed\":0,\"strategy\":\"euclid-chain\"}";
    let reply = client::post_run(&addr, body, false).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    let v = Json::parse(&reply.body).unwrap();
    let result = v.get("result").unwrap();
    assert_eq!(result.get("outcome").unwrap().as_str(), Some("gathered"));
    assert_eq!(result.get("geometry").unwrap().as_str(), Some("euclid"));
    assert!(result.get("max_travel_milli").unwrap().as_u64().unwrap() > 0);
    // The spec hash matches a locally computed euclid spec: one identity.
    let spec = ScenarioSpec::euclid(Family::Rectangle, 48, 0);
    assert_eq!(
        v.get("spec_hash").unwrap().as_str(),
        Some(spec_hash(&spec).as_str())
    );
    // And it replays from the cache.
    let again = client::post_run(&addr, body, false).unwrap();
    assert_eq!(again.header("x-gatherd-cache"), Some("hit"));

    // Kernel-only paths reject euclid specs with named errors.
    let cases: [(&str, bool, &str); 4] = [
        (
            "{\"family\":\"rectangle\",\"n\":48,\"seed\":0,\"strategy\":\"euclid-chain\",\"scheduler\":\"rr2\"}",
            false,
            "FSYNC-only",
        ),
        (
            "{\"family\":\"rectangle\",\"n\":48,\"seed\":1,\"strategy\":\"euclid-chain\"}",
            true,
            "replay recording",
        ),
        (
            "{\"family\":\"rectangle\",\"n\":48,\"seed\":0,\"strategy\":\"paper\",\"geometry\":\"euclid\"}",
            false,
            "supports only strategy 'euclid-chain'",
        ),
        (
            "{\"family\":\"rectangle\",\"n\":48,\"seed\":0,\"strategy\":\"paper\",\"geometry\":\"hex\"}",
            false,
            "expected one of: grid, euclid",
        ),
    ];
    for (body, replay, needle) in cases {
        let reply = client::post_run_opts(&addr, body, false, replay).unwrap();
        assert_eq!(reply.status, 400, "{body}: {}", reply.body);
        assert!(reply.body.contains(needle), "{body}: {}", reply.body);
    }

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
