//! Baseline strategy kernels over packed hop-code state.
//!
//! Each kernel is the data-oriented twin of one boxed baseline: the same
//! decision rule (shared via this crate's pure decision functions, or
//! pinned to them by LUT tests), computed from 2-bit edge codes instead
//! of materialized positions, and plugged into
//! [`chain_sim::KernelSim`] via [`RoundKernel`]. Byte-identity with the
//! boxed strategies is enforced by the unit tests below and the
//! workspace-level differential suite (`tests/kernel_diff.rs`).
//!
//! * [`CompassSeKernel`] — movers are the strict SE-key minima, found
//!   word-parallel ([`chain_sim::PackedChain::strict_se_minima_into`]); each hops
//!   to the neighbor midpoint via [`MIDPOINT_HOP`]. Movers are never
//!   chain-adjacent and their hops keep both incident edges adjacent,
//!   so the sparse (edge-local) apply path needs no safety scan.
//! * [`NaiveLocalKernel`] — the midpoint rule for *every* robot, then
//!   the global cancel fixpoint in code space
//!   ([`cancel_breaking_hops_codes`]), then a dense apply.
//! * [`GlobalVisionKernel`] — one step toward the enclosing-square
//!   center of the exact bounding box (byte-LUT walk), then the cancel
//!   fixpoint and a dense apply.
//!
//! The dense kernels can still break the chain under SSYNC activation
//! (masking robots *after* the cancel fixpoint invalidates its safety
//! argument — exactly as in the boxed engine), and report byte-identical
//! [`ChainError`]s when they do.

use crate::enclosing_center;
use chain_sim::chain::ChainError;
use chain_sim::kernel::{count_moved, ActivationRule, KernelChain, RoundKernel, HOP_ZERO};
use chain_sim::packed::{edge_offset, LANES_PER_WORD};

/// Midpoint-hop table: `MIDPOINT_HOP[ep][en]` is the hop code of the
/// midpoint rule for a robot whose incoming edge (from its predecessor)
/// has code `ep` and outgoing edge code `en` — with `a = p − off(ep)`
/// and `b = p + off(en)`, the hop `signum(a + b − 2p)` collapses to
/// `signum(off(en) − off(ep))`, a pure function of the two codes.
pub static MIDPOINT_HOP: [[u8; 4]; 4] = build_midpoint_hop();

const fn sgn(v: i64) -> i64 {
    if v > 0 {
        1
    } else if v < 0 {
        -1
    } else {
        0
    }
}

const fn build_midpoint_hop() -> [[u8; 4]; 4] {
    let mut t = [[0u8; 4]; 4];
    let mut ep = 0;
    while ep < 4 {
        let po = edge_offset(ep as u8);
        let mut en = 0;
        while en < 4 {
            let no = edge_offset(en as u8);
            let dx = sgn(no.dx - po.dx);
            let dy = sgn(no.dy - po.dy);
            t[ep][en] = ((dx + 1) * 3 + (dy + 1)) as u8;
            en += 1;
        }
        ep += 1;
    }
    t
}

/// Edge-survival table: `EDGE_OK[e][hl][hr]` is `true` iff the edge of
/// code `e` stays chain-adjacent (manhattan ≤ 1) when its tail robot
/// hops `hl` and its head robot hops `hr` — the per-edge predicate of
/// the cancel fixpoint, in code space. One table serves both neighbor
/// checks of a robot: the head-side test of an edge is the tail-side
/// test of the same edge with the offset negated, and manhattan length
/// is symmetric under negation.
pub static EDGE_OK: [[[bool; 9]; 9]; 4] = build_edge_ok();

const fn build_edge_ok() -> [[[bool; 9]; 9]; 4] {
    let mut t = [[[false; 9]; 9]; 4];
    let mut e = 0;
    while e < 4 {
        let eo = edge_offset(e as u8);
        let mut hl = 0;
        while hl < 9 {
            let lo = chain_sim::kernel::hop_offset(hl as u8);
            let mut hr = 0;
            while hr < 9 {
                let ro = chain_sim::kernel::hop_offset(hr as u8);
                let dx = eo.dx + ro.dx - lo.dx;
                let dy = eo.dy + ro.dy - lo.dy;
                t[e][hl][hr] = dx.abs() + dy.abs() <= 1;
                hr += 1;
            }
            hl += 1;
        }
        e += 1;
    }
    t
}

/// [`EDGE_OK`] with the head-hop axis packed into a bitmask:
/// `EDGE_OK_BITS[e·9 + hl] >> hr & 1`. 36 `u16`s — the whole cancel
/// predicate in two cache lines.
static EDGE_OK_BITS: [u16; 36] = build_edge_ok_bits();

const fn build_edge_ok_bits() -> [u16; 36] {
    let mut t = [0u16; 36];
    let mut e = 0;
    while e < 4 {
        let mut hl = 0;
        while hl < 9 {
            let mut hr = 0;
            while hr < 9 {
                if EDGE_OK[e][hl][hr] {
                    t[e * 9 + hl] |= 1 << hr;
                }
                hr += 1;
            }
            hl += 1;
        }
        e += 1;
    }
    t
}

#[inline]
fn edge_ok(e: u8, hl: u8, hr: u8) -> bool {
    EDGE_OK_BITS[e as usize * 9 + hl as usize] >> hr & 1 != 0
}

/// The crate-level `cancel_breaking_hops` fixpoint, translated to hop
/// codes over a decoded edge scratch (one byte per lane, from
/// [`chain_sim::PackedChain::decode_into`]): the identical in-place sweep
/// (ascending index, loop to fixpoint, earlier cancellations of a sweep
/// visible to later tests), with both neighbor checks as [`EDGE_OK`]
/// lookups. Each sweep pays one table probe per lane: a robot's
/// prev-side check is the previous lane's next-side check, so it rolls
/// forward in a register and is only re-probed when a cancellation
/// invalidates it.
pub fn cancel_breaking_hops_codes(edges: &[u8], hops: &mut [u8]) {
    let n = edges.len();
    debug_assert_eq!(hops.len(), n);
    if n < 2 {
        return;
    }
    loop {
        let mut changed = false;
        // ok_left for lane 0: the wrap edge, with hops[n−1] still at its
        // start-of-sweep value (index 0 is checked first).
        let mut ok_left = edge_ok(edges[n - 1], hops[n - 1], hops[0]);
        let mut i = 0;
        while i < n {
            // 8-lane fast path: nine identical consecutive hops mean
            // every edge inside the block keeps its offset, so each
            // robot's next-side check passes and ok_left carries
            // through unchanged — provided it was already true.
            if ok_left && i + 9 <= n {
                let h0 = u64::from_le_bytes(hops[i..i + 8].try_into().unwrap());
                let h1 = u64::from_le_bytes(hops[i + 1..i + 9].try_into().unwrap());
                if h0 == h1 {
                    i += 8;
                    continue;
                }
            }
            let h = hops[i];
            let next = if i + 1 == n { 0 } else { i + 1 };
            let ok_right = edge_ok(edges[i], h, hops[next]);
            if h == HOP_ZERO || (ok_left && ok_right) {
                ok_left = ok_right;
            } else {
                hops[i] = HOP_ZERO;
                changed = true;
                ok_left = edge_ok(edges[i], HOP_ZERO, hops[next]);
            }
            i += 1;
        }
        if !changed {
            return;
        }
    }
}

/// Kernel twin of [`CompassSe`](crate::CompassSe): word-parallel strict
/// SE-minima scan, midpoint hops via LUT, sparse apply.
#[derive(Debug, Default)]
pub struct CompassSeKernel {
    minima: Vec<u64>,
    movers: Vec<(usize, u8)>,
}

impl CompassSeKernel {
    /// A fresh kernel (scratch buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoundKernel for CompassSeKernel {
    fn round<A: ActivationRule>(
        &mut self,
        chain: &mut KernelChain,
        rule: &A,
        round: u64,
    ) -> Result<usize, ChainError> {
        let n = chain.len();
        if n < 2 {
            return Ok(0);
        }
        let packed = chain.packed();
        packed.strict_se_minima_into(&mut self.minima);
        self.movers.clear();
        for (w, &word) in self.minima.iter().enumerate() {
            let mut m = word;
            while m != 0 {
                let i = w * LANES_PER_WORD + (m.trailing_zeros() as usize) / 2;
                m &= m - 1;
                if !A::ALWAYS_ON && !rule.active(round, i) {
                    continue;
                }
                let ep = packed.get(if i == 0 { n - 1 } else { i - 1 });
                let en = packed.get(i);
                self.movers
                    .push((i, MIDPOINT_HOP[ep as usize][en as usize]));
            }
        }
        let moved = self.movers.len();
        // Any subset of the strict minima is pairwise non-adjacent, and a
        // minimum's midpoint hop keeps both incident edges adjacent (its
        // neighbors never move), so the sparse apply cannot break the
        // chain — compass-se is SSYNC-safe.
        chain.apply_sparse(&self.movers);
        Ok(moved)
    }
}

/// Kernel twin of [`NaiveLocal`](crate::NaiveLocal): midpoint hops for
/// everyone, cancel fixpoint, dense apply.
#[derive(Debug, Default)]
pub struct NaiveLocalKernel {
    edges: Vec<u8>,
    hops: Vec<u8>,
}

impl NaiveLocalKernel {
    /// A fresh kernel (scratch buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoundKernel for NaiveLocalKernel {
    fn round<A: ActivationRule>(
        &mut self,
        chain: &mut KernelChain,
        rule: &A,
        round: u64,
    ) -> Result<usize, ChainError> {
        let n = chain.len();
        if n < 2 {
            return Ok(0);
        }
        {
            let packed = chain.packed();
            packed.decode_into(&mut self.edges);
            self.hops.clear();
            self.hops.resize(n, HOP_ZERO);
            // MIDPOINT_HOP[e][e] == HOP_ZERO, so straight runs keep the
            // fill value: an 8-lane block whose incoming edges equal its
            // outgoing edges (one shifted u64 compare) needs no writes.
            let mut i = 0;
            while i < n {
                if i >= 1 && i + 8 <= n {
                    let e0 = u64::from_le_bytes(self.edges[i - 1..i + 7].try_into().unwrap());
                    let e1 = u64::from_le_bytes(self.edges[i..i + 8].try_into().unwrap());
                    if e0 == e1 {
                        i += 8;
                        continue;
                    }
                }
                let ep = self.edges[if i == 0 { n - 1 } else { i - 1 }];
                self.hops[i] = MIDPOINT_HOP[ep as usize][self.edges[i] as usize];
                i += 1;
            }
            // The cancel fixpoint runs on the *full* hop vector, then the
            // activation mask zeroes inactive robots — the boxed engine's
            // order. Under SSYNC the masking can reintroduce breaking
            // pairs, and the dense apply reports them identically.
            cancel_breaking_hops_codes(&self.edges, &mut self.hops);
        }
        if !A::ALWAYS_ON {
            for (i, h) in self.hops.iter_mut().enumerate() {
                if !rule.active(round, i) {
                    *h = HOP_ZERO;
                }
            }
        }
        let moved = count_moved(&self.hops);
        if moved == 0 {
            return Ok(0);
        }
        chain.apply_dense(&self.hops)?;
        Ok(moved)
    }
}

/// Kernel twin of [`GlobalVision`](crate::GlobalVision): one step toward
/// the enclosing-square center, cancel fixpoint, dense apply.
#[derive(Debug, Default)]
pub struct GlobalVisionKernel {
    edges: Vec<u8>,
    hops: Vec<u8>,
}

impl GlobalVisionKernel {
    /// A fresh kernel (scratch buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoundKernel for GlobalVisionKernel {
    fn round<A: ActivationRule>(
        &mut self,
        chain: &mut KernelChain,
        rule: &A,
        round: u64,
    ) -> Result<usize, ChainError> {
        let n = chain.len();
        if n < 2 {
            return Ok(0);
        }
        {
            let packed = chain.packed();
            packed.decode_into(&mut self.edges);
            let center = enclosing_center(packed.bounding());
            let (cx, cy) = (center.x, center.y);
            self.hops.clear();
            self.hops.resize(n, HOP_ZERO);
            let (mut x, mut y) = (packed.origin().x, packed.origin().y);
            const LO: u64 = 0x5555_5555_5555_5555;
            for (chunk, &word) in self.hops.chunks_mut(LANES_PER_WORD).zip(packed.words()) {
                // Whole-word fast path: the 32 robots of a word drift at
                // most 31 cells from its first, so when the word starts
                // more than 31 cells off both center axes every robot
                // shares one signum pair. Fill the hop bytes with that
                // single code and advance the walk by the word's net
                // edge delta — E/S/W/N counts fall out of three
                // popcounts over the 2-bit lanes.
                if chunk.len() == LANES_PER_WORD && (cx - x).abs() > 31 && (cy - y).abs() > 31 {
                    let dx = (cx > x) as i64 - (cx < x) as i64;
                    let dy = (cy > y) as i64 - (cy < y) as i64;
                    chunk.fill(((dx + 1) * 3 + (dy + 1)) as u8);
                    let lo = word & LO;
                    let hi = (word >> 1) & LO;
                    let north = (hi & lo).count_ones() as i64;
                    let west = hi.count_ones() as i64 - north;
                    let south = lo.count_ones() as i64 - north;
                    let east = LANES_PER_WORD as i64 - north - west - south;
                    x += east - west;
                    y += north - south;
                    continue;
                }
                let mut w = word;
                for h in chunk {
                    // Branchless one-step-toward-center: signum per
                    // axis, re-encoded as the hop code (dx+1)·3+(dy+1).
                    let dx = (cx > x) as i64 - (cx < x) as i64;
                    let dy = (cy > y) as i64 - (cy < y) as i64;
                    *h = ((dx + 1) * 3 + (dy + 1)) as u8;
                    // The position walk decodes the edge delta with pure
                    // register arithmetic (`t` = ±1 magnitude, `m` =
                    // axis mask) — no table load on the serial x/y
                    // dependency chain.
                    let e = w & 3;
                    w >>= 2;
                    let t = 1i64 - (e & 2) as i64;
                    let m = (e & 1) as i64 - 1;
                    x += t & m;
                    y += -t & !m;
                }
            }
            cancel_breaking_hops_codes(&self.edges, &mut self.hops);
        }
        if !A::ALWAYS_ON {
            for (i, h) in self.hops.iter_mut().enumerate() {
                if !rule.active(round, i) {
                    *h = HOP_ZERO;
                }
            }
        }
        let moved = count_moved(&self.hops);
        if moved == 0 {
            return Ok(0);
        }
        chain.apply_dense(&self.hops)?;
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cancel_breaking_hops, midpoint_hop, CompassSe, GlobalVision, NaiveLocal};
    use chain_sim::kernel::{hop_code, hop_offset, FsyncRule, KernelSim, RoundRobinRule};
    use chain_sim::{ClosedChain, Outcome, RunLimits, Sim, Strategy};
    use grid_geom::{chain_adjacent, Offset, Point};

    fn ring(w: i64, h: i64) -> ClosedChain {
        let mut pts = Vec::new();
        for x in 0..w {
            pts.push(Point::new(x, 0));
        }
        for y in 1..h {
            pts.push(Point::new(w - 1, y));
        }
        for x in (0..w - 1).rev() {
            pts.push(Point::new(x, h - 1));
        }
        for y in (1..h - 1).rev() {
            pts.push(Point::new(0, y));
        }
        ClosedChain::new(pts).unwrap()
    }

    fn kernel_chain(chain: &ClosedChain) -> KernelChain {
        KernelChain::new(chain_sim::PackedChain::from_chain(chain).unwrap())
    }

    #[test]
    fn midpoint_table_matches_pure_fn() {
        for ep in 0..4u8 {
            for en in 0..4u8 {
                let p = Point::new(0, 0);
                let a = p - edge_offset(ep); // predecessor: p = a + off(ep)
                let b = p + edge_offset(en);
                let want = midpoint_hop(p, a, b);
                let got = hop_offset(MIDPOINT_HOP[ep as usize][en as usize]);
                assert_eq!(got, want, "ep={ep} en={en}");
            }
        }
    }

    #[test]
    fn edge_ok_table_matches_chain_adjacent() {
        for e in 0..4u8 {
            for hl in 0..9u8 {
                for hr in 0..9u8 {
                    let tail = Point::new(0, 0) + hop_offset(hl);
                    let head = Point::new(0, 0) + edge_offset(e) + hop_offset(hr);
                    assert_eq!(
                        EDGE_OK[e as usize][hl as usize][hr as usize],
                        chain_adjacent(tail, head),
                        "e={e} hl={hl} hr={hr}"
                    );
                }
            }
        }
    }

    /// The global-vision walk decodes edge deltas with register
    /// arithmetic; pin it to [`edge_offset`] for all four codes.
    #[test]
    fn register_walk_deltas_match_edge_offset() {
        for e in 0..4u64 {
            let t = 1i64 - (e & 2) as i64;
            let m = (e & 1) as i64 - 1;
            let o = edge_offset(e as u8);
            assert_eq!((t & m, -t & !m), (o.dx, o.dy), "e={e}");
        }
    }

    /// The code-space cancel sweep reaches the same fixpoint as the
    /// position-space original, on hop vectors that actually need
    /// cascaded cancellation.
    #[test]
    fn cancel_codes_matches_boxed_cancel() {
        let chain = ring(7, 4);
        let n = chain.len();
        let packed = chain_sim::PackedChain::from_chain(&chain).unwrap();
        // A hostile vector: everyone pulls toward the origin, which is
        // full of breaking pairs on the far sides.
        let mut boxed: Vec<Offset> = (0..n)
            .map(|i| {
                let p = chain.pos(i);
                Offset::new(-p.x.signum(), -p.y.signum())
            })
            .collect();
        let mut codes: Vec<u8> = boxed.iter().map(|&o| hop_code(o)).collect();
        let mut edges = Vec::new();
        packed.decode_into(&mut edges);
        cancel_breaking_hops(&chain, &mut boxed);
        cancel_breaking_hops_codes(&edges, &mut codes);
        let want: Vec<u8> = boxed.iter().map(|&o| hop_code(o)).collect();
        assert_eq!(codes, want);
    }

    /// FSYNC and SSYNC smoke equivalence for all three kernels: same
    /// outcome, progress, and final positions as the boxed strategies.
    /// (The 500-draw sweep lives in `tests/kernel_diff.rs`.)
    #[test]
    fn kernels_match_boxed_strategies() {
        fn check<S: Strategy, K: RoundKernel>(strategy: S, kernel: K, gathers: bool) {
            let chain = ring(9, 6);
            let limits = RunLimits::for_chain_len(chain.len());
            let mut boxed = Sim::new(chain.clone(), strategy);
            let out_boxed = boxed.run(limits);
            let mut fast = KernelSim::new(kernel_chain(&chain), kernel, FsyncRule);
            let out_fast = fast.run(limits);
            assert_eq!(out_boxed, out_fast);
            assert_eq!(&boxed.progress(), fast.progress());
            assert_eq!(boxed.chain().positions(), fast.chain().positions());
            assert_eq!(matches!(out_fast, Outcome::Gathered { .. }), gathers);
        }
        check(CompassSe::new(), CompassSeKernel::new(), true);
        check(NaiveLocal::new(), NaiveLocalKernel::new(), true);
        check(GlobalVision::new(), GlobalVisionKernel::new(), true);

        // SSYNC round-robin: the activation mask threads through
        // identically (compass-se gathers under any schedule).
        let chain = ring(8, 5);
        let limits = RunLimits::for_chain_len(chain.len());
        let mut boxed = Sim::new(chain.clone(), CompassSe::new())
            .with_scheduler(chain_sim::SchedulerKind::RoundRobin(2).build(0));
        let out_boxed = boxed.run(limits);
        let mut fast = KernelSim::new(
            kernel_chain(&chain),
            CompassSeKernel::new(),
            RoundRobinRule::new(2),
        );
        let out_fast = fast.run(limits);
        assert_eq!(out_boxed, out_fast);
        assert_eq!(&boxed.progress(), fast.progress());
        assert_eq!(boxed.chain().positions(), fast.chain().positions());
    }
}
