//! The open-chain baseline (the setting of \[KM09\] that the paper
//! generalizes).
//!
//! Section 1: "The gathering of an open chain would furthermore be simple
//! in general, as the endpoints are always locally distinguishable and
//! would simply sequentially hop onto their inner neighbors." That is the
//! *zip*: each round both endpoints hop onto their inner neighbor and
//! merge; the chain loses 2 robots per round and gathers in ⌈(n−2)/2⌉
//! rounds.
//!
//! The open-vs-closed experiment (table T8) runs the zip on the *same
//! geometry* as the closed-chain algorithm (the closed chain cut at one
//! robot) to show both are linear, with the closed chain paying a constant
//! factor for its missing endpoints.

use chain_sim::OpenChain;
use grid_geom::Offset;

/// Result of zipping an open chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZipOutcome {
    /// Rounds executed (until gathered or the round cap).
    pub rounds: u64,
    /// Robots remaining.
    pub final_len: usize,
    /// `true` if the bounding box reached a 2×2 subgrid; `false` if the
    /// round cap hit first.
    pub gathered: bool,
}

/// Run the endpoint-zip strategy to completion.
///
/// Each round, endpoint 0 hops onto robot 1 and endpoint n−1 onto robot
/// n−2 (simultaneously); the merge pass removes the coincidences. All
/// moves are trivially chain-safe.
pub fn open_chain_zip(mut chain: OpenChain, max_rounds: u64) -> ZipOutcome {
    let mut rounds = 0;
    let mut hops: Vec<Offset> = Vec::new();
    while !chain.is_gathered() && rounds < max_rounds {
        let n = chain.len();
        hops.clear();
        hops.resize(n, Offset::ZERO);
        if n >= 2 {
            hops[0] = chain.pos(1) - chain.pos(0);
            hops[n - 1] = chain.pos(n - 2) - chain.pos(n - 1);
        }
        chain
            .apply_hops(&hops)
            .expect("zip hops are chain-safe by construction");
        chain.merge_pass();
        rounds += 1;
    }
    ZipOutcome {
        rounds,
        final_len: chain.len(),
        gathered: chain.is_gathered(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_geom::Point;

    fn line(n: i64) -> OpenChain {
        OpenChain::new((0..n).map(|x| Point::new(x, 0)).collect()).unwrap()
    }

    #[test]
    fn zip_gathers_line_in_half_n_rounds() {
        for n in [2i64, 3, 4, 10, 101, 1000] {
            let out = open_chain_zip(line(n), 10_000);
            // Gathered means within a 2×2 box; a line of n needs the two
            // ends to travel (n-2)/2 each.
            let expect = ((n - 2).max(0) as u64).div_ceil(2);
            assert!(
                out.rounds <= expect + 1,
                "n={n}: rounds {} > {}",
                out.rounds,
                expect + 1
            );
        }
    }

    #[test]
    fn zip_handles_l_shape() {
        let mut pts: Vec<Point> = (0..10).map(|x| Point::new(x, 0)).collect();
        pts.extend((1..8).map(|y| Point::new(9, y)));
        let out = open_chain_zip(OpenChain::new(pts).unwrap(), 1000);
        assert!(out.final_len <= 4);
    }

    #[test]
    fn zip_respects_round_cap() {
        let out = open_chain_zip(line(1000), 3);
        assert_eq!(out.rounds, 3);
        assert!(out.final_len > 4);
        assert!(!out.gathered);
        assert!(open_chain_zip(line(10), 1000).gathered);
    }
}
