//! The naive smoothing baseline.
//!
//! "Move toward the midpoint of your two chain neighbors" is the obvious
//! local rule; with merges it acts like a discrete curve-shortening flow
//! and empirically gathers the structured families in Θ(diameter) rounds.
//!
//! It is **not admissible in the paper's model**, though: simultaneous
//! midpoint hops can break the chain (two neighbors jumping in opposite
//! directions), and the only general fix — the global cancel-iteration of
//! `cancel_breaking_hops` — makes a robot's decision depend on
//! unboundedly long cancellation cascades, i.e. on *global* coordination.
//! The paper's algorithm needs no such oracle: every hop it performs is
//! chain-safe from purely local evidence. This baseline is measured for
//! reference (table T7) and documented as model-inadmissible.

use crate::{cancel_breaking_hops, midpoint_hop};
use chain_sim::{ClosedChain, Strategy};
use grid_geom::Offset;

#[derive(Debug, Default, Clone)]
pub struct NaiveLocal;

impl NaiveLocal {
    pub fn new() -> Self {
        NaiveLocal
    }
}

impl Strategy for NaiveLocal {
    fn name(&self) -> &'static str {
        "naive-local"
    }

    fn init(&mut self, _chain: &ClosedChain) {}

    fn compute(&mut self, chain: &ClosedChain, _round: u64, hops: &mut [Offset]) {
        for (i, hop) in hops.iter_mut().enumerate() {
            let p = chain.pos(i);
            let a = chain.pos(chain.nb(i, -1));
            let b = chain.pos(chain.nb(i, 1));
            *hop = midpoint_hop(p, a, b);
        }
        // Global safety oracle — inadmissible in the paper's local model;
        // see the module docs.
        cancel_breaking_hops(chain, hops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_sim::{Outcome, RunLimits, Sim};
    use grid_geom::Point;

    fn ring_3x3() -> ClosedChain {
        ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(2, 1),
            Point::new(2, 2),
            Point::new(1, 2),
            Point::new(0, 2),
            Point::new(0, 1),
        ])
        .unwrap()
    }

    #[test]
    fn smoothing_contracts_rings() {
        // Corner robots fold inward (curve shortening); the ring gathers.
        let mut sim = Sim::new(ring_3x3(), NaiveLocal::new());
        let outcome = sim.run(RunLimits {
            max_rounds: 1000,
            stall_window: 200,
        });
        assert!(matches!(outcome, Outcome::Gathered { .. }), "{outcome:?}");
    }

    #[test]
    fn straight_run_interior_robots_stand() {
        let chain = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(3, 0),
            Point::new(3, 1),
            Point::new(2, 1),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap();
        let mut s = NaiveLocal::new();
        s.init(&chain);
        let mut hops = vec![Offset::ZERO; chain.len()];
        s.compute(&chain, 0, &mut hops);
        // Robots strictly inside the straight rows have their midpoint at
        // their own position: they stand (before cancellation).
        for (i, hop) in hops.iter().enumerate() {
            let p = chain.pos(i);
            if p.x == 1 || p.x == 2 {
                assert_eq!(*hop, Offset::ZERO, "robot {i} at {p}");
            }
        }
    }

    #[test]
    fn surviving_hops_are_applicable() {
        let chain = ring_3x3();
        let mut s = NaiveLocal::new();
        s.init(&chain);
        let mut hops = vec![Offset::ZERO; chain.len()];
        s.compute(&chain, 0, &mut hops);
        let mut c = chain.clone();
        c.apply_hops(&hops).unwrap();
    }
}
