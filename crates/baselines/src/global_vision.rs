//! The global-vision baseline.
//!
//! Section 1 of the paper: with global vision "the robots could compute the
//! center of the globally smallest enclosing square and just move to this
//! point". Every robot hops one step (per axis) toward the center of the
//! bounding box; hops that would break the chain are cancelled by the
//! deterministic fixpoint iteration (legitimate under global vision: every
//! robot can simulate all others).
//!
//! Expected behavior (table T7): gathers in Θ(diameter) rounds — much
//! faster than any local strategy on thin configurations, which is exactly
//! the paper's point about what locality costs.

use crate::{cancel_breaking_hops, center_hop, enclosing_center};
use chain_sim::{ClosedChain, Strategy};
use grid_geom::Offset;

#[derive(Debug, Default, Clone)]
pub struct GlobalVision;

impl GlobalVision {
    pub fn new() -> Self {
        GlobalVision
    }
}

impl Strategy for GlobalVision {
    fn name(&self) -> &'static str {
        "global-vision"
    }

    fn init(&mut self, _chain: &ClosedChain) {}

    fn compute(&mut self, chain: &ClosedChain, _round: u64, hops: &mut [Offset]) {
        // Center of the smallest enclosing square (ties toward min — every
        // robot computes the same point from the same global view).
        let center = enclosing_center(chain.bounding());
        for (i, hop) in hops.iter_mut().enumerate() {
            *hop = center_hop(chain.pos(i), center);
        }
        cancel_breaking_hops(chain, hops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_sim::{Outcome, RunLimits, Sim};
    use grid_geom::Point;

    fn rectangle(w: i64, h: i64) -> ClosedChain {
        let mut pts = vec![Point::new(0, 0)];
        pts.extend((1..w).map(|x| Point::new(x, 0)));
        pts.extend((1..h).map(|y| Point::new(w - 1, y)));
        pts.extend((1..w).map(|x| Point::new(w - 1 - x, h - 1)));
        pts.extend((1..h - 1).map(|y| Point::new(0, h - 1 - y)));
        ClosedChain::new(pts).unwrap()
    }

    #[test]
    fn gathers_rectangles_in_diameter_rounds() {
        for (w, h) in [(6i64, 4i64), (12, 8), (30, 20), (40, 3)] {
            let chain = rectangle(w, h);
            let diameter = w.max(h) as u64;
            let mut sim = Sim::new(chain, GlobalVision::new());
            let outcome = sim.run(RunLimits {
                max_rounds: 4 * diameter + 64,
                stall_window: 2 * diameter + 32,
            });
            match outcome {
                Outcome::Gathered { rounds } => {
                    assert!(
                        rounds <= diameter + 2,
                        "{w}x{h}: {rounds} rounds > diameter {diameter}"
                    );
                }
                other => panic!("{w}x{h}: {other:?}"),
            }
        }
    }

    #[test]
    fn center_robots_do_not_move() {
        let chain = rectangle(5, 5);
        let mut strat = GlobalVision::new();
        strat.init(&chain);
        let mut hops = vec![Offset::ZERO; chain.len()];
        strat.compute(&chain, 0, &mut hops);
        // The bounding box is [0,4]²; center (2,2). Robots on row/column 2
        // only move along the other axis.
        for (i, hop) in hops.iter().enumerate() {
            let p = chain.pos(i);
            if p.x == 2 {
                assert_eq!(hop.dx, 0);
            }
            if p.y == 2 {
                assert_eq!(hop.dy, 0);
            }
        }
    }
}
