//! # baselines
//!
//! The comparison strategies the paper positions its contribution against
//! (Section 1):
//!
//! * [`GlobalVision`] — "a given global vision … would make the gathering
//!   problem easier, because the robots could compute the center of the
//!   globally smallest enclosing square and just move to this point".
//!   Gathers in Θ(diameter) rounds; quantifies what locality costs.
//! * [`CompassSe`] — "the knowledge of a global compass … all robots …
//!   could simply move … to the south-eastern direction and would finally
//!   meet". Adapted to respect chain connectivity.
//! * [`open_chain_zip`] — the open-chain case the paper generalizes
//!   (\[KM09\]-style): "the endpoints are always locally distinguishable and
//!   would simply sequentially hop onto their inner neighbors". Linear
//!   time, trivially — the closed chain's whole difficulty is the absence
//!   of distinguishable endpoints.
//! * [`manhattan_hopper`] — the fixed-endpoint Manhattan Hopper setting of
//!   \[KM09\]: an open chain contracts to a Manhattan-shortest path.
//! * [`NaiveLocal`] — the obvious local rule (move toward the midpoint of
//!   your two chain neighbors). It empirically gathers like a discrete
//!   curve-shortening flow, but its safety needs a *global* cancellation
//!   oracle, which the paper's model forbids — see its module docs.
//!
//! All closed-chain baselines implement [`chain_sim::Strategy`] and run on
//! the same FSYNC engine as the paper's algorithm, including the same
//! connectivity checks; moves that would break the chain are cancelled by
//! a deterministic fixpoint iteration (possible for [`GlobalVision`]
//! because every robot can simulate every other robot's decision, and
//! inadmissible-but-measured for [`NaiveLocal`]).

pub mod compass;
pub mod global_vision;
pub mod hopper;
pub mod kernel;
pub mod naive_local;
pub mod open_zip;

pub use compass::CompassSe;
pub use global_vision::GlobalVision;
pub use hopper::{manhattan_hopper, HopperOutcome};
pub use kernel::{CompassSeKernel, GlobalVisionKernel, NaiveLocalKernel};
pub use naive_local::NaiveLocal;
pub use open_zip::{open_chain_zip, ZipOutcome};

use chain_sim::ClosedChain;
use grid_geom::{Offset, Point, Rect};

/// The south-east key: larger is more south-east. Changes by exactly ±1
/// along every chain edge.
#[inline]
pub const fn se_key(p: Point) -> i64 {
    p.x - p.y
}

/// The compass-se mover rule: is `p` a strict SE-key minimum between its
/// chain neighbors `a` and `b`?
#[inline]
pub fn compass_is_mover(p: Point, a: Point, b: Point) -> bool {
    se_key(a) > se_key(p) && se_key(b) > se_key(p)
}

/// One axis-wise step from `p` toward the midpoint of `a` and `b`
/// (midpoint taken in doubled coordinates to stay in integers) — the
/// shared hop rule of [`CompassSe`] and [`NaiveLocal`].
#[inline]
pub fn midpoint_hop(p: Point, a: Point, b: Point) -> Offset {
    Offset::new(
        (a.x + b.x - 2 * p.x).signum(),
        (a.y + b.y - 2 * p.y).signum(),
    )
}

/// Center of the smallest enclosing square of `bbox` (ties toward min) —
/// the [`GlobalVision`] rendezvous point.
#[inline]
pub fn enclosing_center(bbox: Rect) -> Point {
    Point::new(
        (bbox.min.x + bbox.max.x).div_euclid(2),
        (bbox.min.y + bbox.max.y).div_euclid(2),
    )
}

/// One axis-wise step from `p` toward `center` — the [`GlobalVision`]
/// hop rule.
#[inline]
pub fn center_hop(p: Point, center: Point) -> Offset {
    let d = center - p;
    Offset::new(d.dx.signum(), d.dy.signum())
}

/// Cancel-iteration: given intended hops, repeatedly cancel any hop whose
/// application (against the current surviving set) would break chain
/// adjacency with either neighbor, until a fixpoint. Deterministic, at most
/// `n` sweeps. The all-zero assignment is always safe, so the fixpoint
/// exists.
///
/// Since PR 7 this is the engine's chain-safety guard
/// ([`chain_sim::safety::enforce_chain_safety`]) — this alias keeps the
/// baselines' historical call sites (and the kernel mirror's reference
/// semantics in [`kernel::cancel_breaking_hops_codes`]) pointing at the
/// one canonical fixpoint.
pub(crate) fn cancel_breaking_hops(chain: &ClosedChain, hops: &mut [Offset]) {
    chain_sim::safety::enforce_chain_safety(chain, hops);
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_geom::Point;

    #[test]
    fn cancel_iteration_reaches_safe_fixpoint() {
        let chain = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(2, 1),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap();
        // Everyone tries to move right — neighbors moving in lockstep stay
        // adjacent, so all hops survive.
        let mut hops = vec![Offset::RIGHT; 6];
        cancel_breaking_hops(&chain, &mut hops);
        assert!(hops.iter().all(|h| *h == Offset::RIGHT));

        // One robot tries to run away; its hop gets cancelled.
        let mut hops = vec![Offset::ZERO; 6];
        hops[0] = Offset::new(-1, -1);
        cancel_breaking_hops(&chain, &mut hops);
        assert_eq!(hops[0], Offset::ZERO);
    }

    #[test]
    fn cancel_iteration_cascades() {
        // A line of robots all moving up except the last: the wave of
        // cancellations must propagate.
        let chain = ClosedChain::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(3, 0),
            Point::new(3, 1),
            Point::new(2, 1),
            Point::new(1, 1),
            Point::new(0, 1),
        ])
        .unwrap();
        let mut hops = vec![Offset::ZERO; 8];
        // Robots 0..4 try to move left; robot 0's left move is fine only if
        // robot 7 follows, which it doesn't — check the system settles.
        for h in hops.iter_mut().take(4) {
            *h = Offset::new(-1, 0);
        }
        cancel_breaking_hops(&chain, &mut hops);
        // Whatever survived must be applicable without breaking the chain.
        let mut c2 = chain.clone();
        c2.apply_hops(&hops).unwrap();
    }
}
