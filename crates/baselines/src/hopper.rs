//! A Manhattan-Hopper-style strategy for *open* chains with fixed
//! endpoints — the \[KM09\] setting the paper generalizes.
//!
//! Kutyłowski & Meyer auf der Heide maintain a communication chain between
//! an explorer and a base camp; on the grid, their Manhattan Hopper
//! shortens the chain to an optimal (Manhattan-shortest) path in `O(n)`
//! rounds. We reproduce the *result shape* with a compact mechanism in the
//! same spirit (their hop states provide sequencing; we use the parity of
//! the robot index, which an open chain can establish once from its
//! distinguishable endpoint):
//!
//! * **fold collapse** — a robot whose neighbors coincide hops onto them
//!   (the chain shortens by two),
//! * **corner cut** — a robot at a corner hops to the diagonal cell
//!   `a + b − r` (staircase smoothing, strictly reducing the chain's area
//!   defect),
//! * robots act on rounds matching their index parity, so adjacent robots
//!   never move simultaneously and every hop is chain-safe by
//!   construction; endpoints never move.
//!
//! The claim reproduced in table T8b: the chain reaches the optimal length
//! `manhattan(A, B) + 1` within `O(n)` rounds.

use chain_sim::OpenChain;
use grid_geom::{manhattan, Offset};

/// Outcome of a Manhattan-Hopper run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HopperOutcome {
    /// Rounds executed.
    pub rounds: u64,
    /// Final chain length (robots).
    pub final_len: usize,
    /// The optimum: Manhattan distance between the fixed endpoints + 1.
    pub optimal_len: usize,
}

impl HopperOutcome {
    /// `true` if the chain reached a Manhattan-shortest path.
    pub fn is_optimal(&self) -> bool {
        self.final_len == self.optimal_len
    }
}

/// Run the hopper until the chain is a shortest path (or `max_rounds`).
///
/// The endpoints (first/last robot) are fixed — the explorer/base-camp
/// model of \[KM09\].
pub fn manhattan_hopper(mut chain: OpenChain, max_rounds: u64) -> HopperOutcome {
    let a = chain.pos(0);
    let b = chain.pos(chain.len() - 1);
    let optimal_len = manhattan(a, b) as usize + 1;
    let _ = a;
    let mut rounds = 0;
    let mut hops: Vec<Offset> = Vec::new();

    while rounds < max_rounds && !is_shortest(&chain) {
        let n = chain.len();
        hops.clear();
        hops.resize(n, Offset::ZERO);
        let parity = (rounds % 2) as usize;
        for (i, hop) in hops.iter_mut().enumerate().take(n - 1).skip(1) {
            if i % 2 != parity {
                continue;
            }
            let p = chain.pos(i);
            let prev = chain.pos(i - 1);
            let next = chain.pos(i + 1);
            if prev == next {
                // Fold: hop onto the coinciding neighbors; the merge pass
                // removes the excess.
                *hop = prev - p;
            } else if (prev - p).perpendicular_to(next - p) {
                // Corner: cut to the diagonal cell iff that strictly
                // reduces the distance to the base — the monotone
                // potential Σ dist(r_i, B). Whenever the chain is not yet
                // a shortest path, its farthest-from-B robot is a fold or
                // a cuttable corner, so progress never stalls.
                let diag = grid_geom::Point::new(prev.x + next.x - p.x, prev.y + next.y - p.y);
                if manhattan(diag, b) < manhattan(p, b) {
                    *hop = diag - p;
                }
            }
        }
        chain
            .apply_hops(&hops)
            .expect("parity-scheduled hops are chain-safe");
        chain.merge_pass();
        rounds += 1;
    }
    HopperOutcome {
        rounds,
        final_len: chain.len(),
        optimal_len,
    }
}

/// `true` once every step moves weakly toward `B` in both coordinates
/// (i.e. the chain is a Manhattan-shortest staircase).
fn is_shortest(chain: &OpenChain) -> bool {
    let b = chain.pos(chain.len() - 1);
    for i in 0..chain.len() - 1 {
        let p = chain.pos(i);
        let q = chain.pos(i + 1);
        let toward = manhattan(q, b) < manhattan(p, b);
        if !toward {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_geom::Point;

    fn open(coords: &[(i64, i64)]) -> OpenChain {
        OpenChain::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn straight_line_is_already_optimal() {
        let c = open(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let out = manhattan_hopper(c, 100);
        assert_eq!(out.rounds, 0);
        assert!(out.is_optimal());
    }

    #[test]
    fn u_detour_straightens() {
        // A U detour between (0,0) and (3,0).
        let c = open(&[
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 2),
            (3, 2),
            (3, 1),
            (3, 0),
        ]);
        let n = c.len() as u64;
        let out = manhattan_hopper(c, 16 * n);
        assert!(out.is_optimal(), "{out:?}");
        assert_eq!(out.optimal_len, 4);
    }

    #[test]
    fn endpoints_stay_fixed() {
        let c = open(&[(0, 0), (0, 1), (1, 1), (1, 0), (2, 0), (2, 1)]);
        let a = c.pos(0);
        let b = c.pos(c.len() - 1);
        let out = manhattan_hopper(c, 1000);
        // Endpoints define the optimum; reaching it proves they anchored.
        assert_eq!(out.optimal_len, (manhattan(a, b) + 1) as usize);
        assert!(out.is_optimal(), "{out:?}");
    }

    #[test]
    fn linear_time_on_zigzags() {
        // A long zigzag (worst-case area defect linear in n).
        let mut pts = vec![Point::new(0, 0)];
        for i in 0..30 {
            let x = i;
            let y = if i % 2 == 0 { 1 } else { 0 };
            pts.push(Point::new(x, y + 1));
            pts.push(Point::new(x + 1, y + 1));
            let _ = x;
        }
        // Normalize into a valid chain: rebuild as a simple zigzag walk.
        let mut pts = vec![Point::new(0, 0)];
        let mut p = Point::new(0, 0);
        for i in 0..40 {
            let s = if i % 2 == 0 {
                Offset::UP
            } else {
                Offset::RIGHT
            };
            p += s;
            pts.push(p);
        }
        let c = OpenChain::new(pts).unwrap();
        let n = c.len() as u64;
        let out = manhattan_hopper(c, 32 * n);
        assert!(out.is_optimal(), "{out:?}");
        assert!(out.rounds <= 8 * n, "rounds {} vs n {}", out.rounds, n);
    }

    #[test]
    fn random_detours_reach_optimum() {
        // Deterministic pseudo-random walks with net displacement.
        for seed in 0..10u64 {
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut pts = vec![Point::new(0, 0)];
            let mut p = Point::new(0, 0);
            for _ in 0..60 {
                let s = match next() % 4 {
                    0 => Offset::RIGHT,
                    1 => Offset::UP,
                    2 => Offset::RIGHT,
                    _ => Offset::DOWN,
                };
                p += s;
                // Avoid immediate coincidence of neighbors (model rule).
                pts.push(p);
            }
            let c = OpenChain::new(pts).unwrap();
            let n = c.len() as u64;
            let out = manhattan_hopper(c, 64 * n);
            assert!(out.is_optimal(), "seed {seed}: {out:?}");
        }
    }
}
