//! The global-compass baseline.
//!
//! Section 1: with a shared compass, "all robots without any local
//! neighbors in front of them could simply move for example to the
//! south-eastern direction and would finally meet". For a *chain* the
//! naive reading (translate everything south-east) makes no progress, so
//! the chain-respecting adaptation drains the chain from its north-west
//! side:
//!
//! Order positions by the SE key `x − y` (larger = further south-east; the
//! key changes by exactly ±1 along every chain edge). A robot that is a
//! **strict local minimum** of the key — both neighbors strictly more SE —
//! hops toward the midpoint of its two neighbors. Both neighbors then sit
//! at key +1, i.e. at `p+(1,0)` and/or `p+(0,−1)`:
//!
//! * neighbors on the two different key+1 points → the hop is the diagonal
//!   fold `(1,−1)`, landing adjacent to both (chain-safe by construction);
//! * neighbors on the same point → the hop lands *on* them and the merge
//!   pass shortens the chain.
//!
//! Movers are never adjacent (a mover's neighbors have a less-SE
//! neighbor), so no coordination is needed. Every round strictly increases
//! the bounded key sum, giving an `O(n · diameter)` gathering bound — easy
//! with a compass, as the paper says, but a factor `diameter` worse than
//! the paper's compass-free `O(n)` algorithm (table T7).

use crate::{compass_is_mover, midpoint_hop};
use chain_sim::{ClosedChain, Strategy};
use grid_geom::Offset;

#[derive(Debug, Default, Clone)]
pub struct CompassSe;

impl CompassSe {
    pub fn new() -> Self {
        CompassSe
    }
}

impl Strategy for CompassSe {
    fn name(&self) -> &'static str {
        "compass-se"
    }

    fn init(&mut self, _chain: &ClosedChain) {}

    fn compute(&mut self, chain: &ClosedChain, _round: u64, hops: &mut [Offset]) {
        for (i, hop) in hops.iter_mut().enumerate() {
            let p = chain.pos(i);
            let a = chain.pos(chain.nb(i, -1));
            let b = chain.pos(chain.nb(i, 1));
            if compass_is_mover(p, a, b) {
                // Both neighbors at key+1: hop to their midpoint (diagonal
                // fold or merge hop; adjacency is guaranteed).
                *hop = midpoint_hop(p, a, b);
                debug_assert!(*hop != Offset::ZERO);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_sim::{Outcome, RunLimits, Sim};
    use grid_geom::Point;

    fn rectangle(w: i64, h: i64) -> ClosedChain {
        let mut pts = vec![Point::new(0, 0)];
        pts.extend((1..w).map(|x| Point::new(x, 0)));
        pts.extend((1..h).map(|y| Point::new(w - 1, y)));
        pts.extend((1..w).map(|x| Point::new(w - 1 - x, h - 1)));
        pts.extend((1..h - 1).map(|y| Point::new(0, h - 1 - y)));
        ClosedChain::new(pts).unwrap()
    }

    #[test]
    fn se_extreme_robot_stands() {
        let chain = rectangle(4, 4);
        let mut s = CompassSe::new();
        s.init(&chain);
        let mut hops = vec![Offset::ZERO; chain.len()];
        s.compute(&chain, 0, &mut hops);
        // The SE-most robot (3,0) has maximal key; it must stand still.
        let idx = (0..chain.len())
            .find(|&i| chain.pos(i) == Point::new(3, 0))
            .unwrap();
        assert_eq!(hops[idx], Offset::ZERO);
        // The NW corner (0,3) is the strict minimum; it must fold SE.
        let nw = (0..chain.len())
            .find(|&i| chain.pos(i) == Point::new(0, 3))
            .unwrap();
        assert_eq!(hops[nw], Offset::new(1, -1));
    }

    #[test]
    fn movers_are_never_adjacent() {
        let chain = rectangle(7, 5);
        let mut s = CompassSe::new();
        s.init(&chain);
        let mut hops = vec![Offset::ZERO; chain.len()];
        s.compute(&chain, 0, &mut hops);
        for i in 0..chain.len() {
            if hops[i] != Offset::ZERO {
                assert_eq!(hops[chain.nb(i, 1)], Offset::ZERO);
                assert_eq!(hops[chain.nb(i, -1)], Offset::ZERO);
            }
        }
    }

    #[test]
    fn gathers_rectangles() {
        for (w, h) in [(4i64, 3i64), (6, 4), (9, 6), (16, 16)] {
            let chain = rectangle(w, h);
            let n = chain.len() as u64;
            let d = (w.max(h)) as u64;
            let mut sim = Sim::new(chain, CompassSe::new());
            let outcome = sim.run(RunLimits {
                max_rounds: 8 * n * d + 1024,
                stall_window: 4 * n * d + 512,
            });
            assert!(
                matches!(outcome, Outcome::Gathered { .. }),
                "{w}x{h}: {outcome:?}"
            );
        }
    }
}
