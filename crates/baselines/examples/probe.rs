//! Probe baseline behavior across families.
use baselines::{CompassSe, GlobalVision, NaiveLocal};
use chain_sim::{Outcome, RunLimits, Sim, Strategy};
use workloads::Family;

fn run<S: Strategy>(s: S, fam: Family, n: usize, seed: u64) -> String {
    let chain = fam.generate(n, seed);
    let len = chain.len();
    let d = chain.bounding().diameter() as u64;
    let mut sim = Sim::new(chain, s);
    let out = sim.run(RunLimits::generous(len, d));
    match out {
        Outcome::Gathered { rounds } => format!("ok:{rounds}"),
        Outcome::Stalled { .. } => "STALL".into(),
        Outcome::RoundLimit { .. } => "LIMIT".into(),
        Outcome::ChainBroken { .. } => "BROKEN".into(),
    }
}

fn main() {
    println!(
        "{:<18} {:>6}  {:>12} {:>12} {:>12}",
        "family", "n", "global", "compass", "naive"
    );
    for fam in Family::ALL {
        for n in [40usize, 150] {
            let g = run(GlobalVision::new(), fam, n, 7);
            let c = run(CompassSe::new(), fam, n, 7);
            let l = run(NaiveLocal::new(), fam, n, 7);
            println!("{:<18} {:>6}  {:>12} {:>12} {:>12}", fam.name(), n, g, c, l);
        }
    }
}
