//! Axis directions on the grid.
//!
//! The robots have no compass: "up", "down", "left", "right" are names for
//! *our* description of configurations (the paper uses them the same way,
//! "to be understood in a mirrored or rotated manner"). All algorithmic
//! rules are formulated relative to local offsets; these enums exist for
//! construction, tests and rendering.

use crate::point::Offset;

/// The two grid axes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Axis {
    X,
    Y,
}

impl Axis {
    /// The other axis.
    #[inline]
    pub fn perpendicular(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }

    /// The axis a unit step lies on. Panics (debug) on non-unit steps.
    #[inline]
    pub fn of_step(step: Offset) -> Axis {
        debug_assert!(step.is_unit_step(), "axis of non-unit step {step:?}");
        if step.dy == 0 {
            Axis::X
        } else {
            Axis::Y
        }
    }

    /// Component of `o` along this axis.
    #[inline]
    pub fn component(self, o: Offset) -> i64 {
        match self {
            Axis::X => o.dx,
            Axis::Y => o.dy,
        }
    }

    /// The positive unit step along this axis.
    #[inline]
    pub fn unit(self) -> Offset {
        match self {
            Axis::X => Offset::RIGHT,
            Axis::Y => Offset::UP,
        }
    }
}

/// The four axis-aligned unit directions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dir4 {
    Right,
    Up,
    Left,
    Down,
}

impl Dir4 {
    pub const ALL: [Dir4; 4] = [Dir4::Right, Dir4::Up, Dir4::Left, Dir4::Down];

    #[inline]
    pub fn offset(self) -> Offset {
        match self {
            Dir4::Right => Offset::RIGHT,
            Dir4::Up => Offset::UP,
            Dir4::Left => Offset::LEFT,
            Dir4::Down => Offset::DOWN,
        }
    }

    /// Inverse mapping from a unit step; `None` for non-unit offsets.
    #[inline]
    pub fn from_offset(o: Offset) -> Option<Dir4> {
        match (o.dx, o.dy) {
            (1, 0) => Some(Dir4::Right),
            (-1, 0) => Some(Dir4::Left),
            (0, 1) => Some(Dir4::Up),
            (0, -1) => Some(Dir4::Down),
            _ => None,
        }
    }

    #[inline]
    pub fn opposite(self) -> Dir4 {
        match self {
            Dir4::Right => Dir4::Left,
            Dir4::Left => Dir4::Right,
            Dir4::Up => Dir4::Down,
            Dir4::Down => Dir4::Up,
        }
    }

    /// Rotate 90° counter-clockwise.
    #[inline]
    pub fn rotate_ccw(self) -> Dir4 {
        match self {
            Dir4::Right => Dir4::Up,
            Dir4::Up => Dir4::Left,
            Dir4::Left => Dir4::Down,
            Dir4::Down => Dir4::Right,
        }
    }

    /// Rotate 90° clockwise.
    #[inline]
    pub fn rotate_cw(self) -> Dir4 {
        self.rotate_ccw()
            .opposite()
            .rotate_ccw()
            .opposite()
            .rotate_ccw()
    }

    #[inline]
    pub fn axis(self) -> Axis {
        match self {
            Dir4::Right | Dir4::Left => Axis::X,
            Dir4::Up | Dir4::Down => Axis::Y,
        }
    }
}

/// The eight hop directions (plus [`Offset::ZERO`] for "stay", which is not
/// part of this enum). Used mostly by baselines and rendering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dir8 {
    E,
    NE,
    N,
    NW,
    W,
    SW,
    S,
    SE,
}

impl Dir8 {
    pub const ALL: [Dir8; 8] = [
        Dir8::E,
        Dir8::NE,
        Dir8::N,
        Dir8::NW,
        Dir8::W,
        Dir8::SW,
        Dir8::S,
        Dir8::SE,
    ];

    #[inline]
    pub fn offset(self) -> Offset {
        match self {
            Dir8::E => Offset::new(1, 0),
            Dir8::NE => Offset::new(1, 1),
            Dir8::N => Offset::new(0, 1),
            Dir8::NW => Offset::new(-1, 1),
            Dir8::W => Offset::new(-1, 0),
            Dir8::SW => Offset::new(-1, -1),
            Dir8::S => Offset::new(0, -1),
            Dir8::SE => Offset::new(1, -1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_of_step() {
        assert_eq!(Axis::of_step(Offset::RIGHT), Axis::X);
        assert_eq!(Axis::of_step(Offset::LEFT), Axis::X);
        assert_eq!(Axis::of_step(Offset::UP), Axis::Y);
        assert_eq!(Axis::of_step(Offset::DOWN), Axis::Y);
        assert_eq!(Axis::X.perpendicular(), Axis::Y);
        assert_eq!(Axis::Y.perpendicular(), Axis::X);
    }

    #[test]
    fn dir4_offset_round_trip() {
        for d in Dir4::ALL {
            assert_eq!(Dir4::from_offset(d.offset()), Some(d));
            assert!(d.offset().is_unit_step());
            assert_eq!(d.opposite().offset(), -d.offset());
        }
        assert_eq!(Dir4::from_offset(Offset::new(1, 1)), None);
        assert_eq!(Dir4::from_offset(Offset::ZERO), None);
    }

    #[test]
    fn dir4_rotations_cycle() {
        for d in Dir4::ALL {
            assert_eq!(d.rotate_ccw().rotate_ccw().rotate_ccw().rotate_ccw(), d);
            assert_eq!(d.rotate_ccw().axis(), d.axis().perpendicular());
            assert_eq!(d.rotate_cw().rotate_ccw(), d);
        }
    }

    #[test]
    fn dir8_offsets_are_hops() {
        for d in Dir8::ALL {
            assert!(d.offset().is_hop());
            assert_ne!(d.offset(), Offset::ZERO);
        }
    }

    #[test]
    fn axis_component_and_unit() {
        let o = Offset::new(3, -7);
        assert_eq!(Axis::X.component(o), 3);
        assert_eq!(Axis::Y.component(o), -7);
        assert_eq!(Axis::X.unit(), Offset::RIGHT);
        assert_eq!(Axis::Y.unit(), Offset::UP);
    }
}
