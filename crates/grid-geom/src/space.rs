//! The grid as a [`ChainGeometry`] backend.
//!
//! [`GridSpace`] is the zero-cost tag that plugs Z² into the geometry axis:
//! every trait method delegates to the existing crate primitives
//! ([`chain_adjacent`], [`Offset::is_hop`], point arithmetic), all
//! `#[inline]`, so `chain_sim`'s predicates compile to exactly the code
//! they compiled to before the axis existed — the grid path stays
//! byte-identical through the refactor (pinned by the scheduler goldens,
//! the kernel-diff suite, and the committed replay goldens).

use crate::{chain_adjacent, Offset, Point};
use geom_core::ChainGeometry;

/// The integer grid Z² as a geometry backend: 4-adjacent chain edges,
/// Chebyshev-1 hops, the 2×2-box gathering criterion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GridSpace;

impl ChainGeometry for GridSpace {
    type Point = Point;
    type Hop = Offset;

    const NAME: &'static str = "grid";

    #[inline]
    fn zero_hop() -> Offset {
        Offset::ZERO
    }

    #[inline]
    fn is_hop(hop: Offset) -> bool {
        hop.is_hop()
    }

    #[inline]
    fn apply(p: Point, hop: Offset) -> Point {
        p + hop
    }

    #[inline]
    fn edge_viable(a: Point, b: Point) -> bool {
        chain_adjacent(a, b)
    }

    #[inline]
    fn coincident(a: Point, b: Point) -> bool {
        a == b
    }

    #[inline]
    fn distance(a: Point, b: Point) -> f64 {
        let (dx, dy) = ((a.x - b.x) as f64, (a.y - b.y) as f64);
        (dx * dx + dy * dy).sqrt()
    }

    #[inline]
    fn extent(points: &[Point]) -> (f64, f64) {
        let Some(&first) = points.first() else {
            return (0.0, 0.0);
        };
        let (mut min, mut max) = (first, first);
        for &p in &points[1..] {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        ((max.x - min.x) as f64, (max.y - min.y) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegates_match_crate_primitives() {
        let p = Point::new(3, -2);
        let q = Point::new(4, -2);
        assert!(GridSpace::edge_viable(p, p));
        assert!(GridSpace::edge_viable(p, q));
        assert!(!GridSpace::edge_viable(p, Point::new(4, -1)));
        assert!(GridSpace::coincident(p, p));
        assert!(!GridSpace::coincident(p, q));
        assert_eq!(GridSpace::apply(p, Offset::new(1, 1)), Point::new(4, -1));
        assert!(GridSpace::is_hop(Offset::new(-1, 1)));
        assert!(!GridSpace::is_hop(Offset::new(2, 0)));
        assert_eq!(GridSpace::distance(p, q), 1.0);
        assert_eq!(GridSpace::distance(p, Point::new(6, 2)), 5.0);
    }

    /// The trait's default `gathered` reproduces the 2×2-box criterion: a
    /// bounding box spanning at most one unit step per axis.
    #[test]
    fn gathered_is_the_2x2_box_criterion() {
        let inside = [
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(0, 1),
            Point::new(1, 1),
        ];
        assert!(GridSpace::gathered(&inside));
        let outside = [Point::new(0, 0), Point::new(2, 0)];
        assert!(!GridSpace::gathered(&outside));
        assert_eq!(GridSpace::extent(&outside), (2.0, 0.0));
        assert_eq!(GridSpace::extent(&[]), (0.0, 0.0));
    }
}
