//! Alignment and monotone-run predicates.
//!
//! The paper's local rules constantly ask questions of the form "are the
//! runner and the next three robots located on a straight line?" (Fig. 11a)
//! or "decompose this subchain into maximal horizontal/vertical runs"
//! (Definition 1, quasi lines). This module provides those predicates over
//! slices of positions.
//!
//! We use the *monotone* notion of a run: consecutive positions differing by
//! the **same** unit step. A subchain that folds back onto itself (step `+x`
//! followed by `-x`) is counted as two runs even though all points share a
//! row; the degenerate folds are exactly the k=1 merge patterns of Fig. 2
//! and must not be mistaken for straight line segments (see DESIGN.md §3.2).

use crate::dir::Axis;
use crate::point::{Offset, Point};

/// `true` if `pts` (len ≥ 2) marches in one fixed unit-step direction.
///
/// For a single point or empty slice the answer is `true` vacuously; two
/// points are aligned iff they differ by a unit step.
pub fn is_monotone_aligned(pts: &[Point]) -> bool {
    monotone_axis(pts).is_some() || pts.len() < 2
}

/// If `pts` (len ≥ 2) marches in one fixed unit-step direction, return that
/// step; otherwise `None`.
pub fn monotone_axis(pts: &[Point]) -> Option<Offset> {
    if pts.len() < 2 {
        return None;
    }
    let step = pts[1] - pts[0];
    if !step.is_unit_step() {
        return None;
    }
    for w in pts.windows(2).skip(1) {
        if w[1] - w[0] != step {
            return None;
        }
    }
    Some(step)
}

/// A maximal monotone run inside a step sequence.
///
/// `first_step..first_step + len` indexes steps; the run covers
/// `len + 1` robots (`first_step .. first_step + len` inclusive on robot
/// indices shifted by the caller's convention).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MonotoneRun {
    /// Index of the first step of the run within the scanned slice.
    pub first_step: usize,
    /// Number of steps in the run (robots in the run = len + 1).
    pub len: usize,
    /// The common unit step.
    pub step: Offset,
}

impl MonotoneRun {
    /// Number of robots covered by the run.
    #[inline]
    pub fn robots(&self) -> usize {
        self.len + 1
    }

    /// Axis the run lies on.
    #[inline]
    pub fn axis(&self) -> Axis {
        Axis::of_step(self.step)
    }
}

/// Iterator decomposing a step sequence into maximal monotone runs.
///
/// The scanner works over *steps* (differences between consecutive robots),
/// not positions, so that callers can feed cyclic windows of a closed chain
/// without materializing points twice.
pub struct RunScanner<'a> {
    steps: &'a [Offset],
    at: usize,
}

impl<'a> RunScanner<'a> {
    pub fn new(steps: &'a [Offset]) -> Self {
        debug_assert!(
            steps.iter().all(|s| s.is_unit_step()),
            "non-unit chain step"
        );
        RunScanner { steps, at: 0 }
    }
}

impl<'a> Iterator for RunScanner<'a> {
    type Item = MonotoneRun;

    fn next(&mut self) -> Option<MonotoneRun> {
        if self.at >= self.steps.len() {
            return None;
        }
        let start = self.at;
        let step = self.steps[start];
        let mut end = start + 1;
        while end < self.steps.len() && self.steps[end] == step {
            end += 1;
        }
        self.at = end;
        Some(MonotoneRun {
            first_step: start,
            len: end - start,
            step,
        })
    }
}

/// Convenience: compute the step sequence of a position slice (open chain —
/// no wrap-around step). Panics in debug builds if any step is not a unit
/// step.
pub fn steps_of(pts: &[Point]) -> Vec<Offset> {
    pts.windows(2)
        .map(|w| {
            let s = w[1] - w[0];
            debug_assert!(s.is_unit_step(), "chain gap at {:?} -> {:?}", w[0], w[1]);
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(i64, i64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn alignment_detects_straight_lines() {
        let line = pts(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        assert!(is_monotone_aligned(&line));
        assert_eq!(monotone_axis(&line), Some(Offset::RIGHT));

        let col = pts(&[(5, 2), (5, 1), (5, 0)]);
        assert_eq!(monotone_axis(&col), Some(Offset::DOWN));
    }

    #[test]
    fn alignment_rejects_folds_and_turns() {
        // Fold-back: same row but not monotone — this is a hairpin, the k=1
        // merge shape, and must NOT be classified as a line.
        let fold = pts(&[(0, 0), (1, 0), (0, 0)]);
        assert!(!is_monotone_aligned(&fold));

        let turn = pts(&[(0, 0), (1, 0), (1, 1)]);
        assert!(!is_monotone_aligned(&turn));

        let gap = pts(&[(0, 0), (2, 0)]);
        assert!(!is_monotone_aligned(&gap));
    }

    #[test]
    fn degenerate_slices_are_aligned() {
        assert!(is_monotone_aligned(&[]));
        assert!(is_monotone_aligned(&pts(&[(3, 3)])));
        assert_eq!(monotone_axis(&[]), None);
    }

    #[test]
    fn run_scanner_decomposes_staircase() {
        // Staircase: R U R U R — runs of length 1 step each.
        let p = pts(&[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2)]);
        let steps = steps_of(&p);
        let runs: Vec<_> = RunScanner::new(&steps).collect();
        assert_eq!(runs.len(), 5);
        for r in &runs {
            assert_eq!(r.len, 1);
            assert_eq!(r.robots(), 2);
        }
        assert_eq!(runs[0].step, Offset::RIGHT);
        assert_eq!(runs[1].step, Offset::UP);
    }

    #[test]
    fn run_scanner_decomposes_quasi_line() {
        // HHH U HHH: two horizontal runs of 3 steps... (4 robots each)
        // separated by one vertical step.
        let p = pts(&[
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 0),
            (3, 1),
            (4, 1),
            (5, 1),
            (6, 1),
        ]);
        let steps = steps_of(&p);
        let runs: Vec<_> = RunScanner::new(&steps).collect();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].len, 3);
        assert_eq!(runs[0].axis(), Axis::X);
        assert_eq!(runs[1].len, 1);
        assert_eq!(runs[1].axis(), Axis::Y);
        assert_eq!(runs[2].len, 3);
        assert_eq!(runs[2].first_step, 4);
    }

    #[test]
    fn run_scanner_splits_fold_backs() {
        // +x +x -x : fold — two separate runs even though one row.
        let steps = vec![Offset::RIGHT, Offset::RIGHT, Offset::LEFT];
        let runs: Vec<_> = RunScanner::new(&steps).collect();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].len, 2);
        assert_eq!(runs[1].len, 1);
        assert_eq!(runs[1].step, Offset::LEFT);
    }

    /// Property test (seeded-loop form): the run scanner tiles any step
    /// sequence exactly into maximal same-direction runs.
    #[test]
    fn runs_partition_steps() {
        let mut rng = crate::TestRng::new(0x0bad_5eed_0bad_5eed);
        for _ in 0..256 {
            let len = 1 + (rng.next() % 63) as usize;
            let steps: Vec<Offset> = (0..len)
                .map(|_| match rng.next() % 4 {
                    0 => Offset::RIGHT,
                    1 => Offset::UP,
                    2 => Offset::LEFT,
                    _ => Offset::DOWN,
                })
                .collect();
            let runs: Vec<_> = RunScanner::new(&steps).collect();
            // Runs tile the step sequence exactly.
            let total: usize = runs.iter().map(|r| r.len).sum();
            assert_eq!(total, steps.len());
            let mut at = 0;
            for r in &runs {
                assert_eq!(r.first_step, at);
                for i in 0..r.len {
                    assert_eq!(steps[at + i], r.step);
                }
                at += r.len;
            }
            // Adjacent runs have different steps (maximality).
            for w in runs.windows(2) {
                assert_ne!(w[0].step, w[1].step);
            }
        }
    }
}
