//! # grid-geom
//!
//! Integer grid geometry substrate for the closed-chain gathering system.
//!
//! The paper ("Gathering a Closed Chain of Robots on a Grid", Abshoff et al.,
//! IPDPS 2016) places point-shaped robots on the two-dimensional integer grid
//! Z². Every local rule of the algorithm — merge patterns, quasi lines, run
//! operations — is ultimately a predicate over small sets of grid points and
//! the unit steps between them. This crate provides those primitives:
//!
//! * [`Point`] — a position on Z².
//! * [`Offset`] — a displacement between positions (also used for hops).
//! * [`Dir4`] / [`Axis`] — the four axis directions and the two axes.
//! * [`Rect`] — axis-aligned bounding boxes (used for the 2×2 gathering
//!   criterion).
//! * [`align`] — alignment and monotone-run predicates used by merge
//!   detection and quasi-line scans.
//! * [`GridSpace`] — the grid as a `geom_core::ChainGeometry` backend:
//!   zero-cost inline delegation to the primitives above, making Z² one
//!   value of the system's geometry axis (the other is `euclid-geom`).
//!
//! Everything here is `no_std`-shaped plain data whose only dependency is
//! the `geom-core` trait crate (itself dependency-free); snapshot
//! serialization lives in `chain_sim::snapshot` as a hand-rolled text
//! format.

pub mod align;
pub mod dir;
pub mod point;
pub mod rect;
pub mod space;

pub use align::{is_monotone_aligned, monotone_axis, MonotoneRun, RunScanner};
pub use dir::{Axis, Dir4, Dir8};
pub use point::{Offset, Point};
pub use rect::Rect;
pub use space::GridSpace;

/// The Chebyshev (L∞) distance between two points; a robot hop moves at most
/// one in each coordinate, i.e. Chebyshev distance ≤ 1.
#[inline]
pub fn chebyshev(a: Point, b: Point) -> i64 {
    (a.x - b.x).abs().max((a.y - b.y).abs())
}

/// The Manhattan (L1) distance between two points; chain neighbors must stay
/// at Manhattan distance ≤ 1 (same or 4-adjacent grid point).
#[inline]
pub fn manhattan(a: Point, b: Point) -> i64 {
    (a.x - b.x).abs() + (a.y - b.y).abs()
}

/// `true` if `a` and `b` occupy the same or 4-adjacent grid points — the
/// chain-connectivity relation of the paper's model.
#[inline]
pub fn chain_adjacent(a: Point, b: Point) -> bool {
    manhattan(a, b) <= 1
}

/// Shared deterministic mini-RNG for this crate's seeded property tests
/// (the crate is dependency-free, so each test module would otherwise
/// hand-roll its own copy).
#[cfg(test)]
pub(crate) struct TestRng(u64);

#[cfg(test)]
impl TestRng {
    pub(crate) fn new(seed: u64) -> Self {
        TestRng(seed | 1)
    }

    /// xorshift64: plenty for test-case shuffling.
    pub(crate) fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_and_manhattan_basics() {
        let o = Point::new(0, 0);
        assert_eq!(chebyshev(o, Point::new(3, -4)), 4);
        assert_eq!(manhattan(o, Point::new(3, -4)), 7);
        assert_eq!(chebyshev(o, o), 0);
        assert_eq!(manhattan(o, o), 0);
    }

    #[test]
    fn chain_adjacency_is_same_or_4_adjacent() {
        let p = Point::new(5, 5);
        assert!(chain_adjacent(p, p));
        assert!(chain_adjacent(p, Point::new(6, 5)));
        assert!(chain_adjacent(p, Point::new(4, 5)));
        assert!(chain_adjacent(p, Point::new(5, 6)));
        assert!(chain_adjacent(p, Point::new(5, 4)));
        // Diagonal neighbors are NOT chain adjacent in this model.
        assert!(!chain_adjacent(p, Point::new(6, 6)));
        assert!(!chain_adjacent(p, Point::new(4, 4)));
        assert!(!chain_adjacent(p, Point::new(7, 5)));
    }
}
