//! Axis-aligned bounding rectangles.
//!
//! The gathering criterion of the paper is geometric: the chain is gathered
//! once all robots lie inside a 2×2 subgrid, i.e. the bounding box of all
//! positions has side lengths ≤ 1 (two columns × two rows).

use crate::point::Point;

/// An inclusive axis-aligned rectangle on the grid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    /// Rectangle covering a single point.
    #[inline]
    pub fn point(p: Point) -> Rect {
        Rect { min: p, max: p }
    }

    /// Bounding box of a non-empty point iterator; `None` when empty.
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect::point(first);
        for p in it {
            r.expand(p);
        }
        Some(r)
    }

    /// Grow to include `p`.
    #[inline]
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Number of grid columns covered (inclusive).
    #[inline]
    pub fn width(&self) -> i64 {
        self.max.x - self.min.x + 1
    }

    /// Number of grid rows covered (inclusive).
    #[inline]
    pub fn height(&self) -> i64 {
        self.max.y - self.min.y + 1
    }

    /// `true` if the rectangle fits inside a `w × h` subgrid.
    #[inline]
    pub fn fits_within(&self, w: i64, h: i64) -> bool {
        self.width() <= w && self.height() <= h
    }

    /// The paper's gathering criterion: all points within a 2×2 subgrid.
    #[inline]
    pub fn is_gathered_2x2(&self) -> bool {
        self.fits_within(2, 2)
    }

    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The longer side length in grid points; a lower bound witness for any
    /// gathering strategy (the paper's Ω(n) argument uses the diameter).
    #[inline]
    pub fn diameter(&self) -> i64 {
        self.width().max(self.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_box_of_points() {
        let pts = [
            Point::new(1, 2),
            Point::new(-3, 7),
            Point::new(4, 4),
            Point::new(0, -1),
        ];
        let r = Rect::bounding(pts).unwrap();
        assert_eq!(r.min, Point::new(-3, -1));
        assert_eq!(r.max, Point::new(4, 7));
        assert_eq!(r.width(), 8);
        assert_eq!(r.height(), 9);
        assert!(r.contains(Point::new(0, 0)));
        assert!(!r.contains(Point::new(5, 0)));
    }

    #[test]
    fn empty_bounding_is_none() {
        assert_eq!(Rect::bounding(std::iter::empty()), None);
    }

    #[test]
    fn gathering_criterion() {
        // Four robots on a unit square: gathered.
        let square = [
            Point::new(0, 0),
            Point::new(0, 1),
            Point::new(1, 1),
            Point::new(1, 0),
        ];
        assert!(Rect::bounding(square).unwrap().is_gathered_2x2());
        // Single point: gathered.
        assert!(Rect::point(Point::new(9, 9)).is_gathered_2x2());
        // A 3-wide row: not gathered.
        let row = [Point::new(0, 0), Point::new(1, 0), Point::new(2, 0)];
        assert!(!Rect::bounding(row).unwrap().is_gathered_2x2());
    }

    /// Property test (seeded-loop form): the bounding box contains every
    /// input point and its derived measures are consistent.
    #[test]
    fn expand_is_monotone() {
        let mut rng = crate::TestRng::new(0xdead_beef_cafe_f00d);
        for _ in 0..256 {
            let len = 1 + (rng.next() % 49) as usize;
            let pts: Vec<Point> = (0..len)
                .map(|_| {
                    let x = (rng.next() % 200) as i64 - 100;
                    let y = (rng.next() % 200) as i64 - 100;
                    Point::new(x, y)
                })
                .collect();
            let r = Rect::bounding(pts.iter().copied()).unwrap();
            for p in &pts {
                assert!(r.contains(*p));
            }
            assert!(r.width() >= 1 && r.height() >= 1);
            assert_eq!(r.diameter(), r.width().max(r.height()));
        }
    }
}
