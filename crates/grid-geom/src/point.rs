//! Points and offsets on the integer grid.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A position on the two-dimensional integer grid Z².
///
/// Coordinates are `i64`; configurations in this system stay far away from
/// overflow (positions move by at most one per round and rounds are linear in
/// the chain length).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    pub x: i64,
    pub y: i64,
}

/// A displacement between two [`Point`]s. Also encodes robot hops: a legal
/// hop has both components in `{-1, 0, 1}` (horizontal, vertical, or
/// diagonal move to a neighboring grid point).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Offset {
    pub dx: i64,
    pub dy: i64,
}

impl Point {
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Offset from `self` to `other` (`other - self`).
    #[inline]
    pub fn to(self, other: Point) -> Offset {
        other - self
    }
}

impl Offset {
    pub const ZERO: Offset = Offset { dx: 0, dy: 0 };
    /// Unit step in +x ("right" in figure orientation).
    pub const RIGHT: Offset = Offset { dx: 1, dy: 0 };
    /// Unit step in -x.
    pub const LEFT: Offset = Offset { dx: -1, dy: 0 };
    /// Unit step in +y ("up" in figure orientation).
    pub const UP: Offset = Offset { dx: 0, dy: 1 };
    /// Unit step in -y.
    pub const DOWN: Offset = Offset { dx: 0, dy: -1 };

    #[inline]
    pub const fn new(dx: i64, dy: i64) -> Self {
        Offset { dx, dy }
    }

    /// `true` for the four axis-aligned unit steps. Chain edges between
    /// non-coincident neighbors are always unit steps.
    #[inline]
    pub fn is_unit_step(self) -> bool {
        self.dx.abs() + self.dy.abs() == 1
    }

    /// `true` if this offset is a legal robot hop: both components in
    /// `{-1, 0, 1}` (includes the zero hop = stay).
    #[inline]
    pub fn is_hop(self) -> bool {
        self.dx.abs() <= 1 && self.dy.abs() <= 1
    }

    /// `true` if the offset is diagonal (both components nonzero).
    #[inline]
    pub fn is_diagonal(self) -> bool {
        self.dx != 0 && self.dy != 0
    }

    /// `true` if `self` and `other` are perpendicular axis-aligned unit
    /// steps.
    #[inline]
    pub fn perpendicular_to(self, other: Offset) -> bool {
        debug_assert!(self.is_unit_step() && other.is_unit_step());
        (self.dx == 0) != (other.dx == 0)
    }

    /// Manhattan norm of the offset.
    #[inline]
    pub fn manhattan(self) -> i64 {
        self.dx.abs() + self.dy.abs()
    }

    /// Chebyshev norm of the offset.
    #[inline]
    pub fn chebyshev(self) -> i64 {
        self.dx.abs().max(self.dy.abs())
    }
}

impl Add<Offset> for Point {
    type Output = Point;
    #[inline]
    fn add(self, o: Offset) -> Point {
        Point::new(self.x + o.dx, self.y + o.dy)
    }
}

impl AddAssign<Offset> for Point {
    #[inline]
    fn add_assign(&mut self, o: Offset) {
        self.x += o.dx;
        self.y += o.dy;
    }
}

impl Sub<Offset> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, o: Offset) -> Point {
        Point::new(self.x - o.dx, self.y - o.dy)
    }
}

impl SubAssign<Offset> for Point {
    #[inline]
    fn sub_assign(&mut self, o: Offset) {
        self.x -= o.dx;
        self.y -= o.dy;
    }
}

impl Sub for Point {
    type Output = Offset;
    #[inline]
    fn sub(self, other: Point) -> Offset {
        Offset::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Offset {
    type Output = Offset;
    #[inline]
    fn add(self, o: Offset) -> Offset {
        Offset::new(self.dx + o.dx, self.dy + o.dy)
    }
}

impl AddAssign for Offset {
    #[inline]
    fn add_assign(&mut self, o: Offset) {
        self.dx += o.dx;
        self.dy += o.dy;
    }
}

impl Sub for Offset {
    type Output = Offset;
    #[inline]
    fn sub(self, o: Offset) -> Offset {
        Offset::new(self.dx - o.dx, self.dy - o.dy)
    }
}

impl Neg for Offset {
    type Output = Offset;
    #[inline]
    fn neg(self) -> Offset {
        Offset::new(-self.dx, -self.dy)
    }
}

impl Mul<i64> for Offset {
    type Output = Offset;
    #[inline]
    fn mul(self, k: i64) -> Offset {
        Offset::new(self.dx * k, self.dy * k)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Debug for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.dx, self.dy)
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.dx, self.dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_offset_arithmetic() {
        let p = Point::new(2, 3);
        let q = Point::new(5, 1);
        let d = q - p;
        assert_eq!(d, Offset::new(3, -2));
        assert_eq!(p + d, q);
        assert_eq!(q - d, p);
        assert_eq!(p.to(q), d);
        assert_eq!(-d, Offset::new(-3, 2));
        assert_eq!(d * 2, Offset::new(6, -4));
    }

    #[test]
    fn unit_step_classification() {
        assert!(Offset::RIGHT.is_unit_step());
        assert!(Offset::LEFT.is_unit_step());
        assert!(Offset::UP.is_unit_step());
        assert!(Offset::DOWN.is_unit_step());
        assert!(!Offset::ZERO.is_unit_step());
        assert!(!Offset::new(1, 1).is_unit_step());
        assert!(!Offset::new(2, 0).is_unit_step());
    }

    #[test]
    fn hop_classification() {
        assert!(Offset::ZERO.is_hop());
        assert!(Offset::new(1, 1).is_hop());
        assert!(Offset::new(-1, 1).is_hop());
        assert!(!Offset::new(2, 0).is_hop());
        assert!(!Offset::new(0, -2).is_hop());
        assert!(Offset::new(1, -1).is_diagonal());
        assert!(!Offset::RIGHT.is_diagonal());
    }

    #[test]
    fn perpendicularity() {
        assert!(Offset::RIGHT.perpendicular_to(Offset::UP));
        assert!(Offset::UP.perpendicular_to(Offset::LEFT));
        assert!(!Offset::RIGHT.perpendicular_to(Offset::LEFT));
        assert!(!Offset::DOWN.perpendicular_to(Offset::UP));
    }

    /// Property test (seeded-loop form): add/sub round-trips for arbitrary
    /// points and offsets.
    #[test]
    fn add_sub_round_trip() {
        let mut rng = crate::TestRng::new(0x1234_5678_9abc_def0);
        for _ in 0..512 {
            let x = (rng.next() % 2000) as i64 - 1000;
            let y = (rng.next() % 2000) as i64 - 1000;
            let dx = (rng.next() % 10) as i64 - 5;
            let dy = (rng.next() % 10) as i64 - 5;
            let p = Point::new(x, y);
            let o = Offset::new(dx, dy);
            assert_eq!(p + o - o, p);
            assert_eq!((p + o) - p, o);
        }
    }

    /// Property: on axis-aligned offsets both norms coincide.
    #[test]
    fn norms_agree_on_axis_steps() {
        for k in 1i64..100 {
            let o = Offset::new(k, 0);
            assert_eq!(o.manhattan(), o.chebyshev());
            let v = Offset::new(0, -k);
            assert_eq!(v.manhattan(), v.chebyshev());
        }
    }
}
